//! Performance diagnosis over a recorded [`TelemetrySnapshot`]: critical-path
//! extraction with per-stage attribution, per-rank busy/idle/blocked
//! accounting, load-imbalance and overlap scores, and named findings.
//!
//! ## Critical path
//!
//! The simulator records every span with exact simulated timestamps, so the
//! longest dependency chain can be recovered from times alone: starting from
//! the span that ends last, repeatedly pick the latest-ending span that
//! finishes no later than the current span starts. Each chain element is
//! charged for the interval from its predecessor's end to its own end (so a
//! gap spent waiting for a span is charged to that span's stage). The
//! segments therefore tile `[0, makespan]` exactly and the per-stage shares
//! sum to 100% of the makespan by construction.
//!
//! ## Rank accounting
//!
//! Busy/blocked time is computed as the length of the *union* of span
//! intervals per track (unlike [`crate::export::summary_report`], which sums
//! durations and can double-count overlapping spans). Busy covers pipeline
//! work (Upload/Map/Bin/Sort/Reduce...), blocked covers recovery and fault
//! spans (Retry/Stall/Requeue/Steal/GpuLost); the remainder of the makespan
//! is idle. By construction `busy + blocked + idle == makespan` per rank.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::json::Value;
use crate::span::{SpanRecord, TelemetrySnapshot};

/// Coarse pipeline stage a span kind belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Job setup (dictionary upload, accumulator init scheduling...).
    Setup,
    /// Host → device chunk transfers.
    Upload,
    /// Map kernels (including accumulate-mode map and accumulator init).
    Map,
    /// GPU-side partial reduction of map output.
    PartialReduce,
    /// Binning: partition, download, combine, and fabric sends.
    Bin,
    /// Keyspace sort on the reducing GPU.
    Sort,
    /// Reduce kernels.
    Reduce,
    /// Fault handling: retries, stalls, requeues, steals, losses.
    Recovery,
    /// Time a submitted job sat in the service queue before dispatch
    /// (multi-tenant job service; see the `gpmr-service` crate).
    QueueWait,
    /// Anything not recognised above.
    Other,
}

impl Stage {
    /// Stage for a recorded span kind.
    pub fn of_kind(kind: &str) -> Stage {
        match kind {
            "Setup" => Stage::Setup,
            "Upload" => Stage::Upload,
            "Map" | "AccumulateInit" => Stage::Map,
            "PartialReduce" => Stage::PartialReduce,
            "Partition" | "Download" | "Send" | "Combine" | "NetSend" => Stage::Bin,
            "Sort" => Stage::Sort,
            "Reduce" => Stage::Reduce,
            "Retry" | "Stall" | "Requeue" | "Steal" | "GpuLost" | "Cancelled" => Stage::Recovery,
            "QueueWait" => Stage::QueueWait,
            _ => Stage::Other,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Setup => "Setup",
            Stage::Upload => "Upload",
            Stage::Map => "Map",
            Stage::PartialReduce => "PartialReduce",
            Stage::Bin => "Bin",
            Stage::Sort => "Sort",
            Stage::Reduce => "Reduce",
            Stage::Recovery => "Recovery",
            Stage::QueueWait => "QueueWait",
            Stage::Other => "Other",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Thresholds for [`analyze_with`]; [`Default`] matches `analyze`.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Container span kinds excluded from all accounting (they wrap their
    /// children and would double-count).
    pub container_kinds: Vec<String>,
    /// A rank is a straggler when its active (busy + blocked) time exceeds
    /// the mean across ranks by this factor...
    pub straggler_factor: f64,
    /// ...and by at least this share of the makespan in absolute terms
    /// (guards against flagging noise on tiny jobs).
    pub straggler_min_share: f64,
    /// Map/send overlap is only judged when sends total at least this share
    /// of the makespan.
    pub overlap_min_send_share: f64,
    /// Overlap ratio below this flags `PoorOverlap`.
    pub poor_overlap_ratio: f64,
    /// Sort's critical-path share above this flags `SortBound`.
    pub sort_bound_share: f64,
    /// Transfer retries at or above this flag `TransferRetryHotspot`.
    pub retry_hotspot_min: u64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            container_kinds: vec!["Chunk".to_string()],
            straggler_factor: 1.25,
            straggler_min_share: 0.02,
            overlap_min_send_share: 0.05,
            poor_overlap_ratio: 0.5,
            sort_bound_share: 0.35,
            retry_hotspot_min: 3,
        }
    }
}

/// One element of the critical path.
#[derive(Clone, Debug)]
pub struct PathSegment {
    /// Id of the span charged for this segment.
    pub span_id: u64,
    /// Track the span ran on.
    pub track: u32,
    /// Recorded span kind.
    pub kind: String,
    /// Stage the segment is attributed to.
    pub stage: Stage,
    /// Span start (simulated seconds).
    pub start_s: f64,
    /// Span end (simulated seconds).
    pub end_s: f64,
    /// Seconds of makespan charged to this segment (predecessor end → this
    /// end, so any wait before the span is included).
    pub contribution_s: f64,
}

/// Busy/blocked/idle accounting for one rank track.
#[derive(Clone, Debug)]
pub struct RankActivity {
    /// Track index (== rank for engine-recorded traces).
    pub track: u32,
    /// Track display name (empty if unnamed).
    pub name: String,
    /// Union length of pipeline-work spans (seconds).
    pub busy_s: f64,
    /// Union length of recovery/fault spans not already busy (seconds).
    pub blocked_s: f64,
    /// Makespan minus busy minus blocked (seconds).
    pub idle_s: f64,
    /// Latest span end on this track (seconds).
    pub finish_s: f64,
}

/// Map-compute / send overlap accounting across rank tracks.
#[derive(Clone, Copy, Debug)]
pub struct OverlapStats {
    /// Total send-span seconds on rank tracks.
    pub send_s: f64,
    /// Seconds of send time overlapped by map compute on the same rank.
    pub overlapped_s: f64,
    /// `overlapped_s / send_s`.
    pub ratio: f64,
}

/// A named diagnostic with the evidence that triggered it.
#[derive(Clone, Debug)]
pub enum Finding {
    /// One rank's active time is far above the mean — it delays the job.
    Straggler {
        /// The straggling rank's track index.
        rank: u32,
        /// Its busy + blocked seconds.
        active_s: f64,
        /// Mean busy + blocked seconds across ranks.
        mean_active_s: f64,
    },
    /// Sends are mostly not hidden behind map compute.
    PoorOverlap {
        /// Achieved overlap ratio.
        ratio: f64,
        /// Total send seconds judged.
        send_s: f64,
    },
    /// Sort dominates the critical path.
    SortBound {
        /// Sort's share of the makespan on the critical path.
        share: f64,
    },
    /// Transfer retries are concentrated enough to matter.
    TransferRetryHotspot {
        /// Total retries observed.
        retries: u64,
        /// Track with the most retry spans.
        worst_track: u32,
        /// Retry spans on that track.
        worst_track_retries: u64,
    },
    /// A declarative alert rule fired (see [`crate::alerts`]).
    Alert {
        /// Name of the rule that fired.
        rule: String,
        /// Virtual instant it fired.
        at_s: f64,
        /// The breaching value.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
    },
}

impl Finding {
    /// Stable machine-readable code, e.g. `"Straggler(rank 2)"`.
    pub fn code(&self) -> String {
        match self {
            Finding::Straggler { rank, .. } => format!("Straggler(rank {rank})"),
            Finding::PoorOverlap { .. } => "PoorOverlap".to_string(),
            Finding::SortBound { .. } => "SortBound".to_string(),
            Finding::TransferRetryHotspot { .. } => "TransferRetryHotspot".to_string(),
            Finding::Alert { rule, .. } => format!("Alert({rule})"),
        }
    }

    /// Human-readable description with the triggering evidence.
    pub fn describe(&self) -> String {
        match self {
            Finding::Straggler {
                rank,
                active_s,
                mean_active_s,
            } => format!(
                "rank {rank} is active {active_s:.6}s vs {mean_active_s:.6}s mean — \
                 it bounds the job finish"
            ),
            Finding::PoorOverlap { ratio, send_s } => format!(
                "only {:.1}% of {send_s:.6}s of sends overlap map compute — \
                 binning is not hidden behind the map stage",
                ratio * 100.0
            ),
            Finding::SortBound { share } => format!(
                "sort holds {:.1}% of the critical path — consider a faster sort \
                 or partial reduction upstream",
                share * 100.0
            ),
            Finding::TransferRetryHotspot {
                retries,
                worst_track,
                worst_track_retries,
            } => format!(
                "{retries} transfer retries ({worst_track_retries} on track \
                 {worst_track}) — the fabric is lossy or contended"
            ),
            Finding::Alert {
                rule,
                at_s,
                value,
                threshold,
            } => format!(
                "alert rule {rule} fired at {at_s:.6}s: observed {value} \
                 against threshold {threshold}"
            ),
        }
    }
}

/// Complete analysis of one recorded job.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Latest span end (simulated seconds); 0 for an empty snapshot.
    pub makespan_s: f64,
    /// Critical path, earliest segment first; contributions sum to the
    /// makespan.
    pub critical_path: Vec<PathSegment>,
    /// Seconds of critical path charged to each stage.
    pub stage_s: BTreeMap<Stage, f64>,
    /// Stage holding the largest critical-path share.
    pub bounding_stage: Stage,
    /// That stage's share of the makespan, in `[0, 1]`.
    pub bounding_share: f64,
    /// Per-rank activity, ordered by track index.
    pub ranks: Vec<RankActivity>,
    /// Coefficient of variation (stddev / mean) of per-rank busy time.
    pub imbalance_cv: f64,
    /// Map/send overlap, when any sends were recorded on rank tracks.
    pub overlap: Option<OverlapStats>,
    /// Diagnostics that crossed their thresholds.
    pub findings: Vec<Finding>,
}

/// Analyze a snapshot with default thresholds.
pub fn analyze(snap: &TelemetrySnapshot) -> Analysis {
    analyze_with(snap, &AnalyzeConfig::default())
}

/// Analyze a snapshot with explicit thresholds.
pub fn analyze_with(snap: &TelemetrySnapshot, cfg: &AnalyzeConfig) -> Analysis {
    let spans: Vec<&SpanRecord> = snap
        .spans
        .iter()
        .filter(|s| !cfg.container_kinds.contains(&s.kind))
        .collect();
    let makespan_s = spans.iter().map(|s| s.end_s).fold(0.0, f64::max);

    let critical_path = critical_path(&spans, makespan_s);
    let mut stage_s: BTreeMap<Stage, f64> = BTreeMap::new();
    for seg in &critical_path {
        *stage_s.entry(seg.stage).or_insert(0.0) += seg.contribution_s;
    }
    let (bounding_stage, bounding_secs) = stage_s
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(s, v)| (*s, *v))
        .unwrap_or((Stage::Other, 0.0));
    let bounding_share = if makespan_s > 0.0 {
        bounding_secs / makespan_s
    } else {
        0.0
    };

    let ranks = rank_activity(snap, &spans, makespan_s);
    let imbalance_cv = coefficient_of_variation(ranks.iter().map(|r| r.busy_s));
    let overlap = overlap_stats(&spans, &ranks);

    let findings = find_findings(cfg, makespan_s, &stage_s, &ranks, overlap, snap, &spans);

    Analysis {
        makespan_s,
        critical_path,
        stage_s,
        bounding_stage,
        bounding_share,
        ranks,
        imbalance_cv,
        overlap,
        findings,
    }
}

/// Backward-greedy longest chain: from the latest-ending span, repeatedly
/// hop to the latest-ending span that finishes by the current one's start.
fn critical_path(spans: &[&SpanRecord], makespan_s: f64) -> Vec<PathSegment> {
    if spans.is_empty() {
        return Vec::new();
    }
    let eps = makespan_s.abs() * 1e-9 + 1e-15;
    let mut cur = spans[0];
    for s in &spans[1..] {
        if s.end_s > cur.end_s + eps
            || ((s.end_s - cur.end_s).abs() <= eps && (s.track, s.id) < (cur.track, cur.id))
        {
            cur = s;
        }
    }

    let mut visited: BTreeSet<u64> = BTreeSet::new();
    visited.insert(cur.id);
    let mut chain: Vec<&SpanRecord> = vec![cur];
    while cur.start_s > eps {
        let mut best: Option<&SpanRecord> = None;
        for s in spans {
            if visited.contains(&s.id) || s.end_s > cur.start_s + eps {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    if s.end_s > b.end_s + eps {
                        true
                    } else if (s.end_s - b.end_s).abs() <= eps {
                        // Tie on end time: prefer the current span's own
                        // track (the true local dependency), then the
                        // lowest (track, id) for determinism.
                        let s_local = s.track == cur.track;
                        let b_local = b.track == cur.track;
                        s_local && !b_local
                            || (s_local == b_local && (s.track, s.id) < (b.track, b.id))
                    } else {
                        false
                    }
                }
            };
            if better {
                best = Some(s);
            }
        }
        match best {
            Some(p) => {
                visited.insert(p.id);
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();

    let mut segments = Vec::with_capacity(chain.len());
    let mut prev_end = 0.0f64;
    for s in chain {
        let contribution = (s.end_s - prev_end).max(0.0);
        segments.push(PathSegment {
            span_id: s.id,
            track: s.track,
            kind: s.kind.clone(),
            stage: Stage::of_kind(&s.kind),
            start_s: s.start_s,
            end_s: s.end_s,
            contribution_s: contribution,
        });
        prev_end = prev_end.max(s.end_s);
    }
    segments
}

/// Merge intervals and return total covered length.
fn union_len(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.retain(|(a, b)| b > a);
    iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (a, b) in iv {
        match cur {
            Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
            Some((ca, cb)) => {
                total += cb - ca;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

/// A track is a rank lane if it is named like one, or (unnamed) carries any
/// non-fabric span. NIC lanes only ever carry `NetSend` spans.
fn is_rank_track(snap: &TelemetrySnapshot, track: u32, spans: &[&SpanRecord]) -> bool {
    if let Some(name) = snap.tracks.get(&track) {
        return name.starts_with("rank");
    }
    spans
        .iter()
        .any(|s| s.track == track && s.kind != "NetSend")
}

fn rank_activity(
    snap: &TelemetrySnapshot,
    spans: &[&SpanRecord],
    makespan_s: f64,
) -> Vec<RankActivity> {
    let mut tracks: BTreeSet<u32> = snap.tracks.keys().copied().collect();
    tracks.extend(spans.iter().map(|s| s.track));
    let mut out = Vec::new();
    for track in tracks {
        if !is_rank_track(snap, track, spans) {
            continue;
        }
        let mut busy = Vec::new();
        let mut active = Vec::new();
        let mut finish_s = 0.0f64;
        for s in spans.iter().filter(|s| s.track == track) {
            finish_s = finish_s.max(s.end_s);
            let iv = (s.start_s, s.end_s);
            active.push(iv);
            if Stage::of_kind(&s.kind) != Stage::Recovery {
                busy.push(iv);
            }
        }
        let busy_s = union_len(busy);
        let active_s = union_len(active);
        let blocked_s = (active_s - busy_s).max(0.0);
        out.push(RankActivity {
            track,
            name: snap.tracks.get(&track).cloned().unwrap_or_default(),
            busy_s,
            blocked_s,
            idle_s: (makespan_s - active_s).max(0.0),
            finish_s,
        });
    }
    out
}

fn coefficient_of_variation(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
    var.sqrt() / mean
}

/// How much of each rank's `Send` time is covered by map compute on the
/// same rank (the paper's map/bin overlap claim). `None` when no sends.
fn overlap_stats(spans: &[&SpanRecord], ranks: &[RankActivity]) -> Option<OverlapStats> {
    let mut send_s = 0.0;
    let mut overlapped_s = 0.0;
    for r in ranks {
        let map_iv: Vec<(f64, f64)> = spans
            .iter()
            .filter(|s| s.track == r.track && Stage::of_kind(&s.kind) == Stage::Map)
            .map(|s| (s.start_s, s.end_s))
            .collect();
        for s in spans
            .iter()
            .filter(|s| s.track == r.track && s.kind == "Send")
        {
            send_s += s.duration_s();
            for &(a, b) in &map_iv {
                let lo = s.start_s.max(a);
                let hi = s.end_s.min(b);
                if hi > lo {
                    overlapped_s += hi - lo;
                }
            }
        }
    }
    if send_s > 0.0 {
        Some(OverlapStats {
            send_s,
            overlapped_s,
            ratio: (overlapped_s / send_s).min(1.0),
        })
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn find_findings(
    cfg: &AnalyzeConfig,
    makespan_s: f64,
    stage_s: &BTreeMap<Stage, f64>,
    ranks: &[RankActivity],
    overlap: Option<OverlapStats>,
    snap: &TelemetrySnapshot,
    spans: &[&SpanRecord],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    if ranks.len() >= 2 && makespan_s > 0.0 {
        let mean_active =
            ranks.iter().map(|r| r.busy_s + r.blocked_s).sum::<f64>() / ranks.len() as f64;
        for r in ranks {
            let active = r.busy_s + r.blocked_s;
            if active > mean_active * cfg.straggler_factor
                && active - mean_active > cfg.straggler_min_share * makespan_s
            {
                findings.push(Finding::Straggler {
                    rank: r.track,
                    active_s: active,
                    mean_active_s: mean_active,
                });
            }
        }
    }

    if let Some(o) = overlap {
        if o.send_s >= cfg.overlap_min_send_share * makespan_s && o.ratio < cfg.poor_overlap_ratio {
            findings.push(Finding::PoorOverlap {
                ratio: o.ratio,
                send_s: o.send_s,
            });
        }
    }

    if makespan_s > 0.0 {
        let sort_share = stage_s.get(&Stage::Sort).copied().unwrap_or(0.0) / makespan_s;
        if sort_share > cfg.sort_bound_share {
            findings.push(Finding::SortBound { share: sort_share });
        }
    }

    let mut retries_by_track: BTreeMap<u32, u64> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.kind == "Retry") {
        *retries_by_track.entry(s.track).or_insert(0) += 1;
    }
    let span_retries: u64 = retries_by_track.values().sum();
    let retries = span_retries.max(snap.metrics.counter("engine.transfer_retries"));
    if retries >= cfg.retry_hotspot_min {
        let (worst_track, worst_track_retries) = retries_by_track
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(t, n)| (*t, *n))
            .unwrap_or((0, 0));
        findings.push(Finding::TransferRetryHotspot {
            retries,
            worst_track,
            worst_track_retries,
        });
    }

    findings
}

impl Analysis {
    /// Critical-path stage attributions sorted by descending seconds:
    /// `(stage, seconds, share of makespan)`.
    pub fn stage_shares(&self) -> Vec<(Stage, f64, f64)> {
        let mut shares: Vec<(Stage, f64, f64)> = self
            .stage_s
            .iter()
            .map(|(s, v)| {
                let share = if self.makespan_s > 0.0 {
                    v / self.makespan_s
                } else {
                    0.0
                };
                (*s, *v, share)
            })
            .collect();
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        shares
    }

    /// Stable human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "performance analysis (makespan = {:.6}s)\n",
            self.makespan_s
        );
        out.push_str(&format!(
            "critical path: {} segments, stage shares:\n",
            self.critical_path.len()
        ));
        for (stage, secs, share) in self.stage_shares() {
            out.push_str(&format!(
                "  {stage:<13} {:6.1}%  ({secs:.6}s)\n",
                share * 100.0
            ));
        }
        out.push_str(&format!(
            "bounding stage: {} ({:.1}% of makespan)\n",
            self.bounding_stage,
            self.bounding_share * 100.0
        ));
        if !self.ranks.is_empty() {
            out.push_str("ranks:\n");
            for r in &self.ranks {
                let label = if r.name.is_empty() {
                    format!("track {}", r.track)
                } else {
                    r.name.clone()
                };
                let pct = |v: f64| {
                    if self.makespan_s > 0.0 {
                        v / self.makespan_s * 100.0
                    } else {
                        0.0
                    }
                };
                out.push_str(&format!(
                    "  {label}: busy {:5.1}%  blocked {:5.1}%  idle {:5.1}%  (finish {:.6}s)\n",
                    pct(r.busy_s),
                    pct(r.blocked_s),
                    pct(r.idle_s),
                    r.finish_s
                ));
            }
            out.push_str(&format!(
                "imbalance (CV of busy time): {:.4}\n",
                self.imbalance_cv
            ));
        }
        match self.overlap {
            Some(o) => out.push_str(&format!(
                "map/send overlap: {:.1}% of {:.6}s send time hidden behind map\n",
                o.ratio * 100.0,
                o.send_s
            )),
            None => out.push_str("map/send overlap: no sends recorded\n"),
        }
        if self.findings.is_empty() {
            out.push_str("findings: none\n");
        } else {
            out.push_str("findings:\n");
            for f in &self.findings {
                out.push_str(&format!("  - {}: {}\n", f.code(), f.describe()));
            }
        }
        out
    }

    /// JSON form of the analysis (machine-readable twin of `render_text`).
    pub fn to_value(&self) -> Value {
        let stages = self
            .stage_shares()
            .into_iter()
            .map(|(stage, secs, share)| {
                Value::Obj(vec![
                    ("stage".into(), Value::str(stage.name())),
                    ("seconds".into(), Value::Num(secs)),
                    ("share".into(), Value::Num(share)),
                ])
            })
            .collect();
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("track".into(), Value::Num(r.track as f64)),
                    ("name".into(), Value::str(r.name.clone())),
                    ("busy_s".into(), Value::Num(r.busy_s)),
                    ("blocked_s".into(), Value::Num(r.blocked_s)),
                    ("idle_s".into(), Value::Num(r.idle_s)),
                    ("finish_s".into(), Value::Num(r.finish_s)),
                ])
            })
            .collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("code".into(), Value::str(f.code())),
                    ("detail".into(), Value::str(f.describe())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("makespan_s".into(), Value::Num(self.makespan_s)),
            (
                "critical_path_segments".into(),
                Value::Num(self.critical_path.len() as f64),
            ),
            ("stages".into(), Value::Arr(stages)),
            (
                "bounding_stage".into(),
                Value::str(self.bounding_stage.name()),
            ),
            ("bounding_share".into(), Value::Num(self.bounding_share)),
            ("ranks".into(), Value::Arr(ranks)),
            ("imbalance_cv".into(), Value::Num(self.imbalance_cv)),
        ];
        if let Some(o) = self.overlap {
            fields.push((
                "overlap".into(),
                Value::Obj(vec![
                    ("send_s".into(), Value::Num(o.send_s)),
                    ("overlapped_s".into(), Value::Num(o.overlapped_s)),
                    ("ratio".into(), Value::Num(o.ratio)),
                ]),
            ));
        }
        fields.push(("findings".into(), Value::Arr(findings)));
        Value::Obj(fields)
    }

    /// Rendered JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::span::SpanRecorder;

    fn span(track: u32, kind: &str, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            id: 0,
            parent: None,
            track,
            kind: kind.into(),
            name: kind.into(),
            start_s: start,
            end_s: end,
            attrs: vec![],
        }
    }

    fn snap_of(spans: Vec<SpanRecord>) -> TelemetrySnapshot {
        let rec = SpanRecorder::new(1024);
        for s in spans {
            rec.record(s);
        }
        rec.snapshot(MetricsSnapshot::default())
    }

    #[test]
    fn empty_snapshot_analyzes_to_zero() {
        let a = analyze(&snap_of(vec![]));
        assert_eq!(a.makespan_s, 0.0);
        assert!(a.critical_path.is_empty());
        assert!(a.ranks.is_empty());
        assert!(a.findings.is_empty());
    }

    #[test]
    fn critical_path_tiles_the_makespan() {
        // rank 0: Upload [0,1], Map [1,3]; rank 1: Map [0,2], Sort [3.5,4.5].
        // Path: Upload → Map(r0) → Sort; gap [3,3.5] charged to Sort.
        let a = analyze(&snap_of(vec![
            span(0, "Upload", 0.0, 1.0),
            span(0, "Map", 1.0, 3.0),
            span(1, "Map", 0.0, 2.0),
            span(1, "Sort", 3.5, 4.5),
        ]));
        assert_eq!(a.makespan_s, 4.5);
        let total: f64 = a.critical_path.iter().map(|s| s.contribution_s).sum();
        assert!((total - a.makespan_s).abs() < 1e-12, "{total} vs 4.5");
        let kinds: Vec<&str> = a.critical_path.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, ["Upload", "Map", "Sort"]);
        assert!((a.stage_s[&Stage::Sort] - 1.5).abs() < 1e-12);
        assert_eq!(a.bounding_stage, Stage::Map);
        assert!((a.bounding_share - 2.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn container_kinds_are_excluded_from_the_path() {
        let a = analyze(&snap_of(vec![
            span(0, "Chunk", 0.0, 5.0),
            span(0, "Map", 0.0, 5.0),
        ]));
        assert_eq!(a.critical_path.len(), 1);
        assert_eq!(a.critical_path[0].kind, "Map");
    }

    #[test]
    fn busy_uses_interval_union_not_sums() {
        // Two fully-overlapping map spans: busy is 2s, not 4s.
        let a = analyze(&snap_of(vec![
            span(0, "Map", 0.0, 2.0),
            span(0, "Map", 0.0, 2.0),
            span(0, "Stall", 2.0, 3.0),
        ]));
        let r = &a.ranks[0];
        assert!((r.busy_s - 2.0).abs() < 1e-12);
        assert!((r.blocked_s - 1.0).abs() < 1e-12);
        assert!((r.idle_s - 0.0).abs() < 1e-12);
        assert!((r.busy_s + r.blocked_s + r.idle_s - a.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn straggler_and_retry_findings_fire() {
        let mut spans = vec![
            span(0, "Map", 0.0, 10.0),
            span(1, "Map", 0.0, 1.0),
            span(2, "Map", 0.0, 1.0),
        ];
        for i in 0..4 {
            spans.push(span(1, "Retry", 1.0 + i as f64, 1.5 + i as f64));
        }
        let a = analyze(&snap_of(spans));
        let codes: Vec<String> = a.findings.iter().map(Finding::code).collect();
        assert!(
            codes.contains(&"Straggler(rank 0)".to_string()),
            "{codes:?}"
        );
        assert!(
            codes.contains(&"TransferRetryHotspot".to_string()),
            "{codes:?}"
        );
    }

    #[test]
    fn sort_bound_and_poor_overlap_fire() {
        let a = analyze(&snap_of(vec![
            span(0, "Map", 0.0, 1.0),
            // Send entirely outside map compute: 0% overlap.
            span(0, "Send", 1.0, 2.0),
            span(0, "Sort", 2.0, 10.0),
        ]));
        let codes: Vec<String> = a.findings.iter().map(Finding::code).collect();
        assert!(codes.contains(&"SortBound".to_string()), "{codes:?}");
        assert!(codes.contains(&"PoorOverlap".to_string()), "{codes:?}");
        let o = a.overlap.unwrap();
        assert_eq!(o.ratio, 0.0);
    }

    #[test]
    fn overlapped_sends_do_not_fire_poor_overlap() {
        let a = analyze(&snap_of(vec![
            span(0, "Map", 0.0, 4.0),
            span(0, "Send", 1.0, 3.0),
        ]));
        let o = a.overlap.unwrap();
        assert!((o.ratio - 1.0).abs() < 1e-12);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn nic_tracks_are_not_ranks() {
        let rec = SpanRecorder::new(64);
        rec.set_track_name(0, "rank 0");
        rec.set_track_name(4, "node 0 NIC");
        rec.record(span(0, "Map", 0.0, 1.0));
        rec.record(span(4, "NetSend", 0.0, 1.0));
        let a = analyze(&rec.snapshot(MetricsSnapshot::default()));
        assert_eq!(a.ranks.len(), 1);
        assert_eq!(a.ranks[0].track, 0);
    }

    #[test]
    fn render_text_and_json_are_consistent() {
        let a = analyze(&snap_of(vec![
            span(0, "Upload", 0.0, 1.0),
            span(0, "Map", 1.0, 3.0),
        ]));
        let text = a.render_text();
        assert!(text.contains("bounding stage: Map"));
        let json = a.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("bounding_stage").and_then(Value::as_str), Some("Map"));
        let shares = v.get("stages").and_then(Value::as_arr).unwrap();
        let total: f64 = shares
            .iter()
            .filter_map(|s| s.get("share").and_then(Value::as_f64))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");
    }
}
