//! A minimal, dependency-free JSON tree: build, render, and parse.
//!
//! Object key order is preserved (objects are `Vec<(String, Value)>`), so
//! renders are stable and exporters control field order exactly. The parser
//! is a small recursive-descent implementation sufficient for round-tripping
//! our own exports and validating Perfetto files in tests/CI.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for `Value::Str`.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Field lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string. Non-finite numbers render as `null`
    /// (JSON has no NaN/Inf); integral numbers render without a fraction.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a descriptive error on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our exports;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::Obj(vec![
            ("name".into(), Value::str("gpmr")),
            ("n".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(0.5)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Num(1.0), Value::str("x")]),
            ),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"name":"gpmr","n":42,"ratio":0.5,"ok":true,"none":null,"arr":[1,"x"]}"#
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("a\"b\\c\nd\te\u{1}f");
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_numbers() {
        let v = parse(" { \"a\" : [ -1.5e2 , 0 ] } ").unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(-150.0));
        assert_eq!(arr[1].as_f64(), Some(0.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }
}
