//! Benchmark baselines and the regression gate: a JSON schema for "what a
//! scenario cost" ([`BenchBaseline`]: makespan, per-stage critical-path
//! nanoseconds, counters, imbalance) plus [`diff`]/[`diff_sets`] producing
//! pass/warn/fail verdicts under a relative tolerance.
//!
//! The simulator is deterministic and machine-independent, so a re-run of an
//! unchanged scenario reproduces the baseline bit-for-bit and any drift is a
//! real behaviour change: makespan regressions beyond tolerance **fail**,
//! while improvements, stage-mix shifts, and counter changes **warn** (they
//! deserve a refreshed baseline, not a broken build).

use std::collections::BTreeMap;
use std::fmt;

use crate::analyze::Analysis;
use crate::json::{parse, Value};

const NS_PER_S: f64 = 1e9;

/// Recorded cost of one benchmark scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchBaseline {
    /// Scenario name, e.g. `"sio_4rank"`.
    pub name: String,
    /// Job makespan in simulated nanoseconds.
    pub makespan_ns: u64,
    /// Critical-path attribution per stage, simulated nanoseconds. Values
    /// sum to `makespan_ns` (within rounding).
    pub stage_ns: BTreeMap<String, u64>,
    /// Stage holding the largest critical-path share.
    pub bounding_stage: String,
    /// Coefficient of variation of per-rank busy time.
    pub imbalance_cv: f64,
    /// Engine counters (chunks dispatched, pairs emitted/shuffled...).
    pub counters: BTreeMap<String, u64>,
}

/// Seconds → whole simulated nanoseconds.
pub fn s_to_ns(s: f64) -> u64 {
    (s * NS_PER_S).round().max(0.0) as u64
}

impl BenchBaseline {
    /// Build a baseline from an [`Analysis`] plus engine counters.
    pub fn from_analysis(name: &str, analysis: &Analysis, counters: BTreeMap<String, u64>) -> Self {
        BenchBaseline {
            name: name.to_string(),
            makespan_ns: s_to_ns(analysis.makespan_s),
            stage_ns: analysis
                .stage_s
                .iter()
                .map(|(stage, secs)| (stage.name().to_string(), s_to_ns(*secs)))
                .collect(),
            bounding_stage: analysis.bounding_stage.name().to_string(),
            imbalance_cv: analysis.imbalance_cv,
            counters,
        }
    }

    /// JSON object form.
    pub fn to_value(&self) -> Value {
        let stage_share: Vec<(String, Value)> = self
            .stage_ns
            .iter()
            .map(|(k, v)| {
                let share = if self.makespan_ns > 0 {
                    *v as f64 / self.makespan_ns as f64
                } else {
                    0.0
                };
                (k.clone(), Value::Num(share))
            })
            .collect();
        Value::Obj(vec![
            ("name".into(), Value::str(self.name.clone())),
            ("makespan_ns".into(), Value::Num(self.makespan_ns as f64)),
            (
                "stage_ns".into(),
                Value::Obj(
                    self.stage_ns
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            ("stage_share".into(), Value::Obj(stage_share)),
            (
                "bounding_stage".into(),
                Value::str(self.bounding_stage.clone()),
            ),
            ("imbalance_cv".into(), Value::Num(self.imbalance_cv)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a baseline from its JSON object form. `stage_share` is
    /// derived output and ignored on input.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline: missing name")?
            .to_string();
        let makespan_ns =
            v.get("makespan_ns")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("baseline {name}: missing makespan_ns"))? as u64;
        let map_u64 = |key: &str| -> BTreeMap<String, u64> {
            match v.get(key) {
                Some(Value::Obj(fields)) => fields
                    .iter()
                    .filter_map(|(k, val)| val.as_f64().map(|n| (k.clone(), n as u64)))
                    .collect(),
                _ => BTreeMap::new(),
            }
        };
        Ok(BenchBaseline {
            makespan_ns,
            stage_ns: map_u64("stage_ns"),
            bounding_stage: v
                .get("bounding_stage")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            imbalance_cv: v.get("imbalance_cv").and_then(Value::as_f64).unwrap_or(0.0),
            counters: map_u64("counters"),
            name,
        })
    }
}

/// A named collection of baselines, as stored in `BENCH_PR6.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineSet {
    /// Inverse problem-size scale the scenarios were recorded at.
    pub scale: u64,
    /// Relative tolerance the recording intends to be gated with.
    pub tolerance: f64,
    /// Scenario baselines, in recording order.
    pub baselines: Vec<BenchBaseline>,
}

impl BaselineSet {
    /// Baseline by scenario name.
    pub fn get(&self, name: &str) -> Option<&BenchBaseline> {
        self.baselines.iter().find(|b| b.name == name)
    }

    /// Rendered JSON document.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("scale".into(), Value::Num(self.scale as f64)),
            ("tolerance".into(), Value::Num(self.tolerance)),
            (
                "scenarios".into(),
                Value::Arr(self.baselines.iter().map(BenchBaseline::to_value).collect()),
            ),
        ])
        .render()
    }

    /// Parse a baseline set from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text).map_err(|e| format!("baseline set: invalid JSON: {e}"))?;
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_arr)
            .ok_or("baseline set: missing scenarios array")?;
        Ok(BaselineSet {
            scale: v.get("scale").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            tolerance: v.get("tolerance").and_then(Value::as_f64).unwrap_or(0.0),
            baselines: scenarios
                .iter()
                .map(BenchBaseline::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Outcome of one comparison (or of a whole report: the worst entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within tolerance.
    #[default]
    Pass,
    /// Changed in a way worth refreshing the baseline for, but not a
    /// regression (improvements, stage-mix shifts, counter drift).
    Warn,
    /// Regression beyond tolerance — the gate should fail the build.
    Fail,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        })
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Metric name, e.g. `"makespan_ns"` or `"stage_ns.Map"`.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Verdict for this metric.
    pub verdict: Verdict,
    /// Short explanation.
    pub note: String,
}

/// Full comparison report.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Tolerance the comparison ran with.
    pub tolerance: f64,
    /// Every non-Pass delta, plus the makespan delta of each scenario.
    pub deltas: Vec<MetricDelta>,
    /// Worst verdict across all deltas (Pass when empty).
    pub verdict: Verdict,
}

/// Compare one scenario's new measurement against its baseline.
///
/// Rules: makespan above `old * (1 + tolerance)` fails; makespan below
/// `old * (1 - tolerance)` warns (improvement — refresh the baseline);
/// stage times that shift more than the tolerance *and* amount to at least
/// 2% of the makespan warn; counter or bounding-stage changes warn.
pub fn diff(old: &BenchBaseline, new: &BenchBaseline, tolerance: f64) -> DiffReport {
    let mut report = DiffReport {
        tolerance,
        ..DiffReport::default()
    };
    diff_into(old, new, tolerance, &mut report);
    report.verdict = report
        .deltas
        .iter()
        .map(|d| d.verdict)
        .max()
        .unwrap_or(Verdict::Pass);
    report
}

/// Compare a whole recorded set against a baseline set, matching scenarios
/// by name. Scenarios missing on either side warn.
pub fn diff_sets(old: &BaselineSet, new: &BaselineSet, tolerance: f64) -> DiffReport {
    let mut report = DiffReport {
        tolerance,
        ..DiffReport::default()
    };
    for ob in &old.baselines {
        match new.get(&ob.name) {
            Some(nb) => diff_into(ob, nb, tolerance, &mut report),
            None => report.deltas.push(MetricDelta {
                scenario: ob.name.clone(),
                metric: "scenario".into(),
                old: 1.0,
                new: 0.0,
                verdict: Verdict::Warn,
                note: "scenario missing from new measurement".into(),
            }),
        }
    }
    for nb in &new.baselines {
        if old.get(&nb.name).is_none() {
            report.deltas.push(MetricDelta {
                scenario: nb.name.clone(),
                metric: "scenario".into(),
                old: 0.0,
                new: 1.0,
                verdict: Verdict::Warn,
                note: "scenario not in baseline (new scenario?)".into(),
            });
        }
    }
    report.verdict = report
        .deltas
        .iter()
        .map(|d| d.verdict)
        .max()
        .unwrap_or(Verdict::Pass);
    report
}

fn rel_change(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        new / old - 1.0
    } else if new > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

fn diff_into(old: &BenchBaseline, new: &BenchBaseline, tolerance: f64, report: &mut DiffReport) {
    let scenario = &old.name;

    let rel = rel_change(old.makespan_ns as f64, new.makespan_ns as f64);
    let (verdict, note) = if rel > tolerance {
        (
            Verdict::Fail,
            format!(
                "makespan regressed {:+.1}% (> {:.0}%)",
                rel * 100.0,
                tolerance * 100.0
            ),
        )
    } else if rel < -tolerance {
        (
            Verdict::Warn,
            format!(
                "makespan improved {:+.1}% — refresh the baseline",
                rel * 100.0
            ),
        )
    } else {
        (Verdict::Pass, format!("makespan {:+.2}%", rel * 100.0))
    };
    report.deltas.push(MetricDelta {
        scenario: scenario.clone(),
        metric: "makespan_ns".into(),
        old: old.makespan_ns as f64,
        new: new.makespan_ns as f64,
        verdict,
        note,
    });

    let stage_floor = 0.02 * old.makespan_ns.max(new.makespan_ns) as f64;
    let mut stages: Vec<&String> = old.stage_ns.keys().chain(new.stage_ns.keys()).collect();
    stages.sort();
    stages.dedup();
    for stage in stages {
        let o = old.stage_ns.get(stage).copied().unwrap_or(0) as f64;
        let n = new.stage_ns.get(stage).copied().unwrap_or(0) as f64;
        let rel = rel_change(o, n);
        if o.max(n) >= stage_floor && rel.abs() > tolerance {
            report.deltas.push(MetricDelta {
                scenario: scenario.clone(),
                metric: format!("stage_ns.{stage}"),
                old: o,
                new: n,
                verdict: Verdict::Warn,
                note: format!("stage time shifted {:+.1}%", rel * 100.0),
            });
        }
    }

    if old.bounding_stage != new.bounding_stage && !old.bounding_stage.is_empty() {
        report.deltas.push(MetricDelta {
            scenario: scenario.clone(),
            metric: "bounding_stage".into(),
            old: 0.0,
            new: 0.0,
            verdict: Verdict::Warn,
            note: format!(
                "bounding stage changed: {} -> {}",
                old.bounding_stage, new.bounding_stage
            ),
        });
    }

    let mut counters: Vec<&String> = old.counters.keys().chain(new.counters.keys()).collect();
    counters.sort();
    counters.dedup();
    for counter in counters {
        let o = old.counters.get(counter).copied().unwrap_or(0);
        let n = new.counters.get(counter).copied().unwrap_or(0);
        if o != n {
            report.deltas.push(MetricDelta {
                scenario: scenario.clone(),
                metric: format!("counters.{counter}"),
                old: o as f64,
                new: n as f64,
                verdict: Verdict::Warn,
                note: format!("counter changed {o} -> {n} (deterministic sim: real drift)"),
            });
        }
    }
}

impl DiffReport {
    /// Stable human-readable report, one line per delta plus a verdict.
    pub fn render_text(&self) -> String {
        let mut out = format!("perf diff (tolerance ±{:.0}%)\n", self.tolerance * 100.0);
        for d in &self.deltas {
            out.push_str(&format!(
                "  [{}] {} {}: {} -> {} ({})\n",
                d.verdict, d.scenario, d.metric, d.old, d.new, d.note
            ));
        }
        out.push_str(&format!("verdict: {}\n", self.verdict));
        out
    }

    /// JSON form of the report.
    pub fn to_json(&self) -> String {
        let deltas = self
            .deltas
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("scenario".into(), Value::str(d.scenario.clone())),
                    ("metric".into(), Value::str(d.metric.clone())),
                    ("old".into(), Value::Num(d.old)),
                    ("new".into(), Value::Num(d.new)),
                    ("verdict".into(), Value::str(d.verdict.to_string())),
                    ("note".into(), Value::str(d.note.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("tolerance".into(), Value::Num(self.tolerance)),
            ("deltas".into(), Value::Arr(deltas)),
            ("verdict".into(), Value::str(self.verdict.to_string())),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(name: &str, makespan_ns: u64) -> BenchBaseline {
        BenchBaseline {
            name: name.into(),
            makespan_ns,
            stage_ns: [("Map".to_string(), makespan_ns / 2)].into_iter().collect(),
            bounding_stage: "Map".into(),
            imbalance_cv: 0.1,
            counters: [("engine.chunks_dispatched".to_string(), 8)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn identical_baselines_pass() {
        let b = baseline("sio_4rank", 1_000_000);
        let report = diff(&b, &b, 0.15);
        assert_eq!(report.verdict, Verdict::Pass);
        assert!(report.render_text().contains("verdict: PASS"));
    }

    #[test]
    fn two_x_regression_fails() {
        let old = baseline("sio_4rank", 1_000_000);
        let mut new = baseline("sio_4rank", 2_000_000);
        new.stage_ns = old.stage_ns.clone(); // isolate the makespan signal
        let report = diff(&old, &new, 0.15);
        assert_eq!(report.verdict, Verdict::Fail);
        assert!(report.render_text().contains("regressed"));
    }

    #[test]
    fn improvement_warns_but_does_not_fail() {
        let old = baseline("sio_4rank", 1_000_000);
        let new = baseline("sio_4rank", 500_000);
        let report = diff(&old, &new, 0.15);
        assert_eq!(report.verdict, Verdict::Warn);
    }

    #[test]
    fn counter_drift_warns() {
        let old = baseline("wo_1rank", 1_000_000);
        let mut new = old.clone();
        new.counters.insert("engine.chunks_dispatched".into(), 9);
        let report = diff(&old, &new, 0.15);
        assert_eq!(report.verdict, Verdict::Warn);
        assert!(report
            .deltas
            .iter()
            .any(|d| d.metric == "counters.engine.chunks_dispatched"));
    }

    #[test]
    fn set_round_trips_through_json() {
        let set = BaselineSet {
            scale: 64,
            tolerance: 0.15,
            baselines: vec![baseline("wo_1rank", 123_456_789), baseline("sio_8rank", 42)],
        };
        let text = set.to_json();
        let back = BaselineSet::from_json(&text).expect("parses");
        assert_eq!(back, set);
    }

    #[test]
    fn set_diff_flags_missing_scenarios() {
        let old = BaselineSet {
            scale: 64,
            tolerance: 0.15,
            baselines: vec![baseline("a", 100), baseline("b", 100)],
        };
        let new = BaselineSet {
            scale: 64,
            tolerance: 0.15,
            baselines: vec![baseline("a", 100)],
        };
        let report = diff_sets(&old, &new, 0.15);
        assert_eq!(report.verdict, Verdict::Warn);
        assert!(report
            .deltas
            .iter()
            .any(|d| d.scenario == "b" && d.note.contains("missing")));
    }
}
