//! Property-based tests for the device model: timing monotonicity,
//! timeline exclusivity, memory conservation, and launch determinism on
//! arbitrary inputs.

use gpmr_sim_gpu::{
    kernel_time, occupancy, GpuSpec, KernelCost, LaunchConfig, SimDuration, SimTime, Timeline,
};
use proptest::prelude::*;

fn spec() -> GpuSpec {
    GpuSpec::gt200()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernel_time_is_monotone_in_every_cost_component(
        flops in 0u64..1 << 40,
        coalesced in 0u64..1 << 34,
        uncoalesced in 0u64..1 << 30,
        atomics in 0u64..1 << 28,
        extra in 1u64..1 << 20,
    ) {
        let s = spec();
        let base = KernelCost {
            flops,
            bytes_coalesced: coalesced,
            bytes_uncoalesced: uncoalesced,
            atomic_ops: atomics,
        };
        let t0 = kernel_time(&s, 1.0, &base).as_secs();
        for grown in [
            KernelCost { flops: flops + extra, ..base },
            KernelCost { bytes_coalesced: coalesced + extra, ..base },
            KernelCost { bytes_uncoalesced: uncoalesced + extra, ..base },
            KernelCost { atomic_ops: atomics + extra, ..base },
        ] {
            prop_assert!(kernel_time(&s, 1.0, &grown).as_secs() >= t0);
        }
    }

    #[test]
    fn lower_occupancy_is_never_faster(
        flops in 1u64..1 << 36,
        bytes in 1u64..1 << 32,
        occ_hi in 0.05f64..1.0,
        occ_delta in 0.01f64..0.5,
    ) {
        let s = spec();
        let cost = KernelCost {
            flops,
            bytes_coalesced: bytes,
            ..KernelCost::ZERO
        };
        let occ_lo = (occ_hi - occ_delta).max(0.01);
        let hi = kernel_time(&s, occ_hi, &cost).as_secs();
        let lo = kernel_time(&s, occ_lo, &cost).as_secs();
        prop_assert!(lo >= hi - 1e-15);
    }

    #[test]
    fn timeline_reservations_never_overlap(
        requests in prop::collection::vec((0.0f64..10.0, 0.0f64..0.5), 1..50),
    ) {
        let mut tl = Timeline::new();
        let mut reservations = Vec::new();
        for (earliest, dur) in requests {
            reservations.push(
                tl.reserve(SimTime::from_secs(earliest), SimDuration::from_secs(dur)),
            );
        }
        // FIFO service: each reservation starts no earlier than the
        // previous one ended.
        for w in reservations.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
        // Busy time equals the sum of durations.
        let total: f64 = reservations.iter().map(|r| r.duration().as_secs()).sum();
        prop_assert!((tl.busy_time().as_secs() - total).abs() < 1e-9);
    }

    #[test]
    fn occupancy_fraction_is_bounded(
        threads in 1u32..512,
        shared in 0u32..16 * 1024,
        regs in 1u32..64,
    ) {
        let s = spec();
        let cfg = LaunchConfig::grid(8, threads)
            .with_shared_bytes(shared)
            .with_regs_per_thread(regs);
        let occ = occupancy(&s, &cfg);
        prop_assert!(occ.fraction >= 0.0);
        prop_assert!(occ.fraction <= 1.0 + 1e-12);
        // Residency never exceeds the hardware block cap.
        prop_assert!(occ.blocks_per_sm <= s.max_blocks_per_sm);
    }

    #[test]
    fn item_ranges_partition_any_total(
        total in 0usize..100_000,
        blocks in 1u32..2048,
    ) {
        use gpmr_sim_gpu::Gpu;
        let mut gpu = Gpu::new(spec());
        let cfg = LaunchConfig::grid(blocks, 64);
        let (launch, _) = gpu
            .launch(SimTime::ZERO, &cfg, |ctx| ctx.item_range(total))
            .unwrap();
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for r in launch.outputs {
            prop_assert!(r.start >= last_end || r.is_empty());
            covered += r.len();
            last_end = last_end.max(r.end);
        }
        prop_assert_eq!(covered, total);
    }

    #[test]
    fn scaled_hardware_stretches_time_linearly(
        flops in 1u64..1 << 36,
        bytes in 1u64..1 << 30,
        scale in 2.0f64..128.0,
    ) {
        let base = spec();
        let slow = spec().scaled(scale);
        let cost = KernelCost {
            flops,
            bytes_coalesced: bytes,
            ..KernelCost::ZERO
        };
        // Remove the fixed launch overhead before comparing.
        let t_base = kernel_time(&base, 1.0, &cost).as_secs() - base.kernel_launch_overhead_s;
        let t_slow = kernel_time(&slow, 1.0, &cost).as_secs() - slow.kernel_launch_overhead_s;
        prop_assert!((t_slow / t_base - scale).abs() / scale < 1e-9);
    }
}
