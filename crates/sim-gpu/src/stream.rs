//! CUDA-style streams: ergonomic sequencing of device operations.
//!
//! The low-level device API threads explicit `SimTime` instants through
//! every call — maximal control, used by the GPMR engine. A [`Stream`]
//! wraps that bookkeeping the way `cudaStream_t` does: operations issued
//! on one stream serialize after each other; operations on different
//! streams overlap wherever the underlying resources (compute engine,
//! PCI-e directions) allow; [`Stream::wait`] is the analogue of
//! `cudaStreamWaitEvent`.

use crate::device::Gpu;
use crate::error::SimGpuResult;
use crate::kernel::{BlockCtx, Launch, LaunchConfig};
use crate::memory::DeviceBuffer;
use crate::time::SimTime;

/// An ordered sequence of device operations (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stream {
    cursor: SimTime,
}

impl Stream {
    /// A stream whose first operation may start at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A stream whose first operation may start at `at`.
    pub fn starting_at(at: SimTime) -> Self {
        Stream { cursor: at }
    }

    /// The instant all work issued on this stream has completed — the
    /// analogue of `cudaStreamSynchronize`.
    pub fn completion(&self) -> SimTime {
        self.cursor
    }

    /// Make this stream wait for everything issued on `other` so far
    /// (`cudaStreamWaitEvent` with an event recorded now).
    pub fn wait(&mut self, other: &Stream) -> &mut Self {
        self.cursor = self.cursor.max(other.cursor);
        self
    }

    /// Upload `src` to a new device buffer on this stream.
    pub fn upload<T: Clone>(&mut self, gpu: &mut Gpu, src: &[T]) -> SimGpuResult<DeviceBuffer<T>> {
        let (buf, res) = gpu.upload(self.cursor, src)?;
        self.cursor = res.end;
        Ok(buf)
    }

    /// Reserve an untyped host-to-device transfer on this stream.
    pub fn h2d(&mut self, gpu: &mut Gpu, bytes: u64) -> &mut Self {
        let res = gpu.h2d(self.cursor, bytes);
        self.cursor = res.end;
        self
    }

    /// Reserve an untyped device-to-host transfer on this stream.
    pub fn d2h(&mut self, gpu: &mut Gpu, bytes: u64) -> &mut Self {
        let res = gpu.d2h(self.cursor, bytes);
        self.cursor = res.end;
        self
    }

    /// Download and free a device buffer on this stream.
    pub fn download<T>(&mut self, gpu: &mut Gpu, buf: DeviceBuffer<T>) -> Vec<T> {
        let (data, res) = gpu.download(self.cursor, buf);
        self.cursor = res.end;
        data
    }

    /// Launch a kernel on this stream.
    pub fn launch<R, F>(
        &mut self,
        gpu: &mut Gpu,
        cfg: &LaunchConfig,
        f: F,
    ) -> SimGpuResult<Launch<R>>
    where
        R: Send,
        F: Fn(&mut BlockCtx) -> R + Sync,
    {
        let (launch, res) = gpu.launch(self.cursor, cfg, f)?;
        self.cursor = res.end;
        Ok(launch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn operations_on_one_stream_serialize() {
        let mut g = gpu();
        let mut s = Stream::new();
        s.h2d(&mut g, 1 << 24);
        let after_upload = s.completion();
        s.launch(&mut g, &LaunchConfig::grid(30, 256), |ctx| {
            ctx.charge_flops(1 << 20);
        })
        .unwrap();
        assert!(s.completion() > after_upload);
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        let mut g = gpu();
        // Stream A: a long upload. Stream B: a kernel. They use different
        // engines, so B's kernel must not wait for A's copy.
        let mut a = Stream::new();
        a.h2d(&mut g, 256 << 20); // ~80 ms on gen-1 PCI-e
        let mut b = Stream::new();
        b.launch(&mut g, &LaunchConfig::grid(30, 256), |ctx| {
            ctx.charge_flops(1 << 10);
        })
        .unwrap();
        assert!(
            b.completion() < a.completion(),
            "kernel should finish while the copy is still in flight"
        );
    }

    #[test]
    fn wait_orders_across_streams() {
        let mut g = gpu();
        let mut producer = Stream::new();
        producer.h2d(&mut g, 64 << 20);
        let mut consumer = Stream::new();
        consumer.wait(&producer);
        let start = consumer.completion();
        assert_eq!(start, producer.completion());
        consumer
            .launch(&mut g, &LaunchConfig::grid(4, 64), |ctx| {
                ctx.charge_flops(100);
            })
            .unwrap();
        assert!(consumer.completion() > producer.completion());
    }

    #[test]
    fn upload_download_round_trip() {
        let mut g = gpu();
        let mut s = Stream::new();
        let data: Vec<u32> = (0..4096).collect();
        let buf = s.upload(&mut g, &data).unwrap();
        let back = s.download(&mut g, buf);
        assert_eq!(back, data);
        assert!(s.completion().as_secs() > 0.0);
        assert_eq!(g.mem.used(), 0);
    }

    #[test]
    fn starting_at_offsets_the_whole_chain() {
        let mut g = gpu();
        let mut s = Stream::starting_at(SimTime::from_secs(1.0));
        s.d2h(&mut g, 1024);
        assert!(s.completion().as_secs() > 1.0);
    }
}
