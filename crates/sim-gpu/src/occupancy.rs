//! CUDA-style occupancy calculation.
//!
//! Occupancy — resident warps divided by the hardware maximum — determines
//! how well a kernel hides memory latency. The calculator mirrors NVIDIA's
//! spreadsheet logic: residency is limited by threads, blocks, shared
//! memory, and registers per SM, and the binding constraint wins.

use crate::kernel::LaunchConfig;
use crate::spec::GpuSpec;

/// The occupancy achieved by a launch configuration on a device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Fraction of maximum resident warps, in `(0, 1]` for a valid launch.
    pub fraction: f64,
}

/// Compute occupancy for `cfg` on `spec`.
///
/// Returns a zero occupancy if the block cannot run at all (too many
/// threads, registers, or shared memory for even one resident block);
/// callers usually validate the launch first.
pub fn occupancy(spec: &GpuSpec, cfg: &LaunchConfig) -> Occupancy {
    let threads = cfg.block_threads.max(1);
    // Warp-granular thread residency.
    let warps_per_block = threads.div_ceil(spec.warp_size);
    let by_warps = spec.max_warps_per_sm() / warps_per_block.max(1);
    let by_blocks = spec.max_blocks_per_sm;
    let by_shared = spec
        .shared_mem_per_sm
        .checked_div(cfg.shared_bytes)
        .unwrap_or(u32::MAX);
    let regs_per_block = cfg.regs_per_thread.max(1) * threads;
    let by_regs = spec
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);

    let blocks = by_warps.min(by_blocks).min(by_shared).min(by_regs);
    let resident_warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        fraction: resident_warps as f64 / spec.max_warps_per_sm() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(block: u32) -> LaunchConfig {
        LaunchConfig::grid(64, block)
    }

    #[test]
    fn small_blocks_hit_block_limit() {
        let spec = GpuSpec::gt200();
        // 32-thread blocks: 8-block limit binds -> 8 warps of 32 resident.
        let occ = occupancy(&spec, &cfg(32));
        assert_eq!(occ.blocks_per_sm, 8);
        assert!((occ.fraction - 8.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn full_blocks_hit_thread_limit() {
        let spec = GpuSpec::gt200();
        // 512-thread blocks: 1024/512 = 2 resident blocks, 32 warps = 100%.
        let occ = occupancy(&spec, &cfg(512));
        assert_eq!(occ.blocks_per_sm, 2);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_residency() {
        let spec = GpuSpec::gt200();
        let c = LaunchConfig::grid(64, 64).with_shared_bytes(8 * 1024);
        let occ = occupancy(&spec, &c);
        // 16 kB / 8 kB = 2 blocks of 2 warps = 4 warps resident.
        assert_eq!(occ.blocks_per_sm, 2);
        assert!((occ.fraction - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn registers_limit_residency() {
        let spec = GpuSpec::gt200();
        let c = LaunchConfig::grid(64, 256).with_regs_per_thread(32);
        // 256*32 = 8192 regs/block; 16384/8192 = 2 blocks = 16 warps.
        let occ = occupancy(&spec, &c);
        assert_eq!(occ.blocks_per_sm, 2);
        assert!((occ.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_shared_mem_gives_zero() {
        let spec = GpuSpec::gt200();
        let c = LaunchConfig::grid(1, 64).with_shared_bytes(32 * 1024);
        let occ = occupancy(&spec, &c);
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.fraction, 0.0);
    }
}
