//! Device global-memory accounting.
//!
//! The GPMR paper's central constraint is that a GPU has a small, fixed
//! amount of memory and no virtual memory: datasets must be chunked to fit.
//! [`DeviceMemory`] enforces that constraint. Buffer contents live in host
//! RAM (this is a simulator), but every [`DeviceBuffer`] allocation charges
//! the device's capacity and out-of-memory conditions are real errors that
//! callers (and tests) must handle.

use std::sync::Arc;

use std::sync::Mutex;

use crate::error::{SimGpuError, SimGpuResult};

#[derive(Debug, Default)]
struct MemState {
    capacity: u64,
    used: u64,
    peak: u64,
    allocations: u64,
}

/// A capacity-tracked global-memory allocator for one device.
///
/// Cloning shares the underlying accounting (it is a handle).
///
/// ```
/// use gpmr_sim_gpu::{DeviceMemory, SimGpuError};
///
/// let mem = DeviceMemory::new(1024);
/// let buf = mem.alloc::<u32>(200).unwrap(); // 800 bytes
/// assert_eq!(mem.available(), 224);
/// // The device really is full: a second allocation fails.
/// assert!(matches!(
///     mem.alloc::<u32>(100),
///     Err(SimGpuError::OutOfMemory { .. })
/// ));
/// drop(buf);
/// assert_eq!(mem.available(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    state: Arc<Mutex<MemState>>,
}

impl DeviceMemory {
    /// Create an allocator with `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            state: Arc::new(Mutex::new(MemState {
                capacity,
                ..MemState::default()
            })),
        }
    }

    /// Allocate a typed buffer of `len` zero-initialized elements.
    pub fn alloc<T: Clone + Default>(&self, len: usize) -> SimGpuResult<DeviceBuffer<T>> {
        self.alloc_init(len, T::default())
    }

    /// Allocate a typed buffer of `len` copies of `init`.
    pub fn alloc_init<T: Clone>(&self, len: usize, init: T) -> SimGpuResult<DeviceBuffer<T>> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.charge(bytes)?;
        Ok(DeviceBuffer {
            data: vec![init; len],
            bytes,
            mem: self.clone(),
        })
    }

    /// Allocate a buffer holding a copy of `src` (the logical effect of a
    /// host-to-device copy; the *time* of the copy is charged separately
    /// through the PCI-e link).
    pub fn alloc_from_slice<T: Clone>(&self, src: &[T]) -> SimGpuResult<DeviceBuffer<T>> {
        let bytes = std::mem::size_of_val(src) as u64;
        self.charge(bytes)?;
        Ok(DeviceBuffer {
            data: src.to_vec(),
            bytes,
            mem: self.clone(),
        })
    }

    /// Allocate a buffer taking ownership of `data`.
    pub fn alloc_from_vec<T>(&self, data: Vec<T>) -> SimGpuResult<DeviceBuffer<T>> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.charge(bytes)?;
        Ok(DeviceBuffer {
            data,
            bytes,
            mem: self.clone(),
        })
    }

    fn charge(&self, bytes: u64) -> SimGpuResult<()> {
        let mut st = self.state.lock().unwrap();
        if st.used + bytes > st.capacity {
            return Err(SimGpuError::OutOfMemory {
                requested: bytes,
                available: st.capacity - st.used,
            });
        }
        st.used += bytes;
        st.peak = st.peak.max(st.used);
        st.allocations += 1;
        Ok(())
    }

    fn release(&self, bytes: u64) {
        let mut st = self.state.lock().unwrap();
        st.used = st.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.state.lock().unwrap().used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.state.lock().unwrap().capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        let st = self.state.lock().unwrap();
        st.capacity - st.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.state.lock().unwrap().peak
    }

    /// Note a modeled working set of `bytes` resident on top of current
    /// allocations, raising the peak without charging capacity.
    ///
    /// The engine moves whole chunks and pair sets through analytical cost
    /// formulas rather than individual [`DeviceBuffer`]s, so this is how
    /// those working sets reach the high-water mark (and, through it, the
    /// `gpu.rank{r}.mem_peak_bytes` gauge). Accounting only — it never
    /// fails, even when the modeled set transiently exceeds capacity (the
    /// engine charges out-of-core passes for that instead).
    pub fn note_resident(&self, bytes: u64) {
        let mut st = self.state.lock().unwrap();
        st.peak = st.peak.max(st.used + bytes);
    }

    /// Number of allocations performed over the allocator's lifetime.
    pub fn allocation_count(&self) -> u64 {
        self.state.lock().unwrap().allocations
    }
}

/// A typed buffer resident in (simulated) device memory.
///
/// Deref gives slice access for kernels; dropping the buffer returns its
/// bytes to the device allocator.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    mem: DeviceMemory,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, releasing the device allocation and returning
    /// the host-side data (the logical effect of a device-to-host copy
    /// followed by a free).
    pub fn into_vec(self) -> Vec<T> {
        // Drop impl releases; move data out first via ManuallyDrop.
        let mut me = std::mem::ManuallyDrop::new(self);
        me.mem.release(me.bytes);
        std::mem::take(&mut me.data)
    }
}

impl<T> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.mem.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_track_usage() {
        let mem = DeviceMemory::new(1024);
        let buf = mem.alloc::<u32>(64).unwrap();
        assert_eq!(mem.used(), 256);
        assert_eq!(buf.len(), 64);
        drop(buf);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 256);
        assert_eq!(mem.allocation_count(), 1);
    }

    #[test]
    fn oom_is_an_error() {
        let mem = DeviceMemory::new(100);
        let _a = mem.alloc::<u8>(60).unwrap();
        let err = mem.alloc::<u8>(50).unwrap_err();
        match err {
            SimGpuError::OutOfMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 50);
                assert_eq!(available, 40);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn freeing_makes_room() {
        let mem = DeviceMemory::new(100);
        let a = mem.alloc::<u8>(80).unwrap();
        assert!(mem.alloc::<u8>(40).is_err());
        drop(a);
        assert!(mem.alloc::<u8>(40).is_ok());
    }

    #[test]
    fn note_resident_raises_peak_without_charging() {
        let mem = DeviceMemory::new(100);
        let _a = mem.alloc::<u8>(30).unwrap();
        mem.note_resident(50);
        assert_eq!(mem.used(), 30, "accounting only: nothing is charged");
        assert_eq!(mem.peak(), 80);
        // A modeled set beyond capacity is fine — it raises the high-water
        // mark but never errors and never blocks real allocations.
        mem.note_resident(200);
        assert_eq!(mem.peak(), 230);
        assert!(mem.alloc::<u8>(70).is_ok());
    }

    #[test]
    fn from_slice_and_into_vec_round_trip() {
        let mem = DeviceMemory::new(1024);
        let buf = mem.alloc_from_slice(&[1u32, 2, 3]).unwrap();
        assert_eq!(mem.used(), 12);
        let v = buf.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn alloc_from_vec_charges_capacity() {
        let mem = DeviceMemory::new(16);
        assert!(mem.alloc_from_vec(vec![0u64; 3]).is_err());
        let b = mem.alloc_from_vec(vec![7u64, 8]).unwrap();
        assert_eq!(b.as_slice(), &[7, 8]);
        assert_eq!(mem.available(), 0);
    }

    #[test]
    fn mutation_through_deref() {
        let mem = DeviceMemory::new(1024);
        let mut buf = mem.alloc::<u32>(4).unwrap();
        buf[2] = 9;
        buf.as_mut_slice()[0] = 1;
        assert_eq!(buf.as_slice(), &[1, 0, 9, 0]);
        assert!(!buf.is_empty());
        assert_eq!(buf.size_bytes(), 16);
    }
}
