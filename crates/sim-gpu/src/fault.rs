//! Seeded, clock-driven fault injection.
//!
//! A [`FaultPlan`] is a deterministic schedule of hardware misbehaviour
//! expressed in *simulated* time: GPU losses (fail-stop), rank stalls
//! (stragglers), and fabric transfer failures or delays. The plan itself
//! is inert data — the engine and the fabric consult it at well-defined
//! detection points, so two runs with the same plan (and the same seed,
//! for generated plans) observe exactly the same faults and produce
//! bit-identical traces. See `DESIGN.md` §"Fault model" for the recovery
//! semantics built on top of this.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop GPU loss: `rank`'s device becomes unusable at `at`. The
    /// loss is detected the next time the scheduler touches the rank.
    GpuKill {
        /// Victim rank.
        rank: u32,
        /// Simulated instant of the loss.
        at: SimTime,
    },
    /// Straggler injection: `rank`'s process freezes for `duration` at the
    /// first dispatch at or after `at`.
    RankStall {
        /// Victim rank.
        rank: u32,
        /// Simulated instant the stall begins (quantised to the next
        /// chunk dispatch).
        at: SimTime,
        /// How long the rank is frozen.
        duration: SimDuration,
    },
    /// Transfers matching `(from, to)` whose payload is ready inside
    /// `[start, until)` fail their first `fails` attempts.
    TransferFail {
        /// Sender rank; `None` matches any sender.
        from: Option<u32>,
        /// Receiver rank; `None` matches any receiver.
        to: Option<u32>,
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive); `SimTime::from_secs(f64::INFINITY)`
        /// leaves the window open.
        until: SimTime,
        /// Number of attempts that fail before the link heals.
        fails: u32,
    },
    /// Elastic GPU *add*: `rank`'s device does not exist until `at`, then
    /// joins the running job. An added rank takes no part in the initial
    /// chunk distribution or the reducer set (fixed at job start); it
    /// acquires work exclusively through the scheduler's work stealing.
    GpuAdd {
        /// Joining rank (must be below the cluster size).
        rank: u32,
        /// Simulated instant the device becomes available.
        at: SimTime,
    },
    /// Transfers matching `(from, to)` whose payload is ready inside
    /// `[start, until)` are delayed by `extra` before entering the wire.
    TransferDelay {
        /// Sender rank; `None` matches any sender.
        from: Option<u32>,
        /// Receiver rank; `None` matches any receiver.
        to: Option<u32>,
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Added latency per matching transfer.
        extra: SimDuration,
    },
}

/// What the fault plan decrees for one transfer attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TransferOutcome {
    /// The transfer proceeds normally.
    Deliver,
    /// The transfer proceeds after the given extra delay.
    Delay(SimDuration),
    /// The attempt fails; the caller must retry (later) or give up.
    Fail,
}

/// Parse error for [`FaultPlan::parse`], carrying the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanParseError(
    /// Human-readable description of what failed to parse.
    pub String,
);

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanParseError {}

/// A deterministic schedule of injected faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

fn forever() -> SimTime {
    SimTime::from_secs(f64::INFINITY)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The seed the plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the plan contains any GPU kill.
    pub fn has_kills(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::GpuKill { .. }))
    }

    /// Whether the plan adds any GPU mid-job.
    pub fn has_adds(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::GpuAdd { .. }))
    }

    /// Append an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Builder: kill `rank` at `at_s` simulated seconds.
    pub fn kill(mut self, rank: u32, at_s: f64) -> Self {
        self.push(FaultEvent::GpuKill {
            rank,
            at: SimTime::from_secs(at_s),
        });
        self
    }

    /// Builder: add `rank`'s GPU to the running job at `at_s` simulated
    /// seconds (elastic scale-out; see [`FaultEvent::GpuAdd`]).
    pub fn add(mut self, rank: u32, at_s: f64) -> Self {
        self.push(FaultEvent::GpuAdd {
            rank,
            at: SimTime::from_secs(at_s),
        });
        self
    }

    /// Builder: stall `rank` for `duration_s` seconds starting at `at_s`.
    pub fn stall(mut self, rank: u32, at_s: f64, duration_s: f64) -> Self {
        self.push(FaultEvent::RankStall {
            rank,
            at: SimTime::from_secs(at_s),
            duration: SimDuration::from_secs(duration_s),
        });
        self
    }

    /// Builder: fail the first `fails` attempts of transfers `from -> to`
    /// ready inside `[start_s, until_s)`. `None` ranks match any.
    pub fn transfer_fail(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        start_s: f64,
        until_s: f64,
        fails: u32,
    ) -> Self {
        self.push(FaultEvent::TransferFail {
            from,
            to,
            start: SimTime::from_secs(start_s),
            until: SimTime::from_secs(until_s),
            fails,
        });
        self
    }

    /// Builder: delay transfers `from -> to` ready inside
    /// `[start_s, until_s)` by `extra_s` seconds.
    pub fn transfer_delay(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        start_s: f64,
        until_s: f64,
        extra_s: f64,
    ) -> Self {
        self.push(FaultEvent::TransferDelay {
            from,
            to,
            start: SimTime::from_secs(start_s),
            until: SimTime::from_secs(until_s),
            extra: SimDuration::from_secs(extra_s),
        });
        self
    }

    /// The earliest kill instant scheduled for `rank`, if any.
    pub fn kill_time(&self, rank: u32) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::GpuKill { rank: r, at } if *r == rank => Some(*at),
                _ => None,
            })
            .reduce(SimTime::min)
    }

    /// The earliest add instant scheduled for `rank`, if any. A rank with
    /// an add event starts the job dormant and joins at this instant.
    pub fn add_time(&self, rank: u32) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::GpuAdd { rank: r, at } if *r == rank => Some(*at),
                _ => None,
            })
            .reduce(SimTime::min)
    }

    /// Ranks with a scheduled add event, sorted and deduplicated.
    pub fn added_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::GpuAdd { rank, .. } => Some(*rank),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// All stalls scheduled for `rank`, sorted by start instant.
    pub fn stalls_for(&self, rank: u32) -> Vec<(SimTime, SimDuration)> {
        let mut stalls: Vec<(SimTime, SimDuration)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::RankStall {
                    rank: r,
                    at,
                    duration,
                } if *r == rank => Some((*at, *duration)),
                _ => None,
            })
            .collect();
        stalls.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        stalls
    }

    /// What happens to attempt number `attempt` (0-based) of a transfer
    /// `from -> to` whose payload is ready at `ready`. A matching failure
    /// wins over any delay; matching delays are cumulative.
    pub fn transfer_outcome(
        &self,
        from: u32,
        to: u32,
        ready: SimTime,
        attempt: u32,
    ) -> TransferOutcome {
        let matches = |f: &Option<u32>, t: &Option<u32>, start: &SimTime, until: &SimTime| {
            f.is_none_or(|r| r == from)
                && t.is_none_or(|r| r == to)
                && *start <= ready
                && ready < *until
        };
        let mut delay = SimDuration::ZERO;
        let mut delayed = false;
        for e in &self.events {
            match e {
                FaultEvent::TransferFail {
                    from: f,
                    to: t,
                    start,
                    until,
                    fails,
                } if matches(f, t, start, until) && attempt < *fails => {
                    return TransferOutcome::Fail;
                }
                FaultEvent::TransferDelay {
                    from: f,
                    to: t,
                    start,
                    until,
                    extra,
                } if matches(f, t, start, until) => {
                    delay += *extra;
                    delayed = true;
                }
                _ => {}
            }
        }
        if delayed {
            TransferOutcome::Delay(delay)
        } else {
            TransferOutcome::Deliver
        }
    }

    /// Generate a random plan for a cluster of `ranks` GPUs, with every
    /// fault scheduled inside `[0, horizon_s)` simulated seconds. The
    /// plan is a pure function of `seed`: identical seeds yield identical
    /// plans. At most `ranks - 1` GPUs are killed, so a job always has a
    /// survivor to recover onto.
    pub fn generate(seed: u64, ranks: u32, horizon_s: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan {
            seed,
            events: Vec::new(),
        };
        let horizon = horizon_s.max(1e-6);
        let ranks = ranks.max(1);

        // Kills: up to min(2, ranks - 1) distinct victims.
        let max_kills = (ranks.saturating_sub(1)).min(2) as usize;
        let kills = if max_kills == 0 {
            0
        } else {
            rng.gen_range(0..=max_kills)
        };
        let mut victims: Vec<u32> = Vec::new();
        while victims.len() < kills {
            let r = rng.gen_range(0..ranks);
            if !victims.contains(&r) {
                victims.push(r);
            }
        }
        for r in victims {
            let at = rng.gen_range(0.0..horizon);
            plan = plan.kill(r, at);
        }

        // Stragglers.
        for _ in 0..rng.gen_range(0..=2u32) {
            let r = rng.gen_range(0..ranks);
            let at = rng.gen_range(0.0..horizon);
            let dur = rng.gen_range(0.05 * horizon..0.3 * horizon);
            plan = plan.stall(r, at, dur);
        }

        // Transient transfer failures (always finite, so jobs converge).
        for _ in 0..rng.gen_range(0..=2u32) {
            let from = rng.gen_range(0..ranks);
            let to = rng.gen_range(0..ranks);
            let start = rng.gen_range(0.0..horizon);
            let until = start + rng.gen_range(0.1 * horizon..0.5 * horizon);
            let fails = rng.gen_range(1..=3u32);
            plan = plan.transfer_fail(Some(from), Some(to), start, until, fails);
        }

        // Transfer delays.
        for _ in 0..rng.gen_range(0..=2u32) {
            let from = rng.gen_range(0..ranks);
            let to = rng.gen_range(0..ranks);
            let start = rng.gen_range(0.0..horizon);
            let until = start + rng.gen_range(0.1 * horizon..0.5 * horizon);
            let extra = rng.gen_range(0.01 * horizon..0.1 * horizon);
            plan = plan.transfer_delay(Some(from), Some(to), start, until, extra);
        }

        plan
    }

    /// [`FaultPlan::generate`] for an elastic cluster: the chaos schedule
    /// of `generate(seed, ranks, horizon_s)` (kills, stalls, transfer
    /// faults confined to the first `ranks` ranks), plus one add event for
    /// each of the `extra` trailing ranks `ranks..ranks + extra`, at
    /// seed-deterministic instants inside the horizon. `generate` itself
    /// never emits adds, so existing chaos comparisons against same-size
    /// clean runs stay valid.
    pub fn generate_elastic(seed: u64, ranks: u32, extra: u32, horizon_s: f64) -> Self {
        let mut plan = Self::generate(seed, ranks, horizon_s);
        // A separate stream keeps the base schedule identical to the
        // inelastic plan for the same seed.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let horizon = horizon_s.max(1e-6);
        for r in ranks..ranks.saturating_add(extra) {
            let at = rng.gen_range(0.0..0.6 * horizon);
            plan = plan.add(r, at);
        }
        plan
    }

    /// Parse a plan from its textual form: `;`-separated events, times in
    /// (fractional) simulated seconds.
    ///
    /// * `kill:R@T` — kill rank `R` at time `T`;
    /// * `add:R@T` — add rank `R`'s GPU to the running job at time `T`;
    /// * `stall:R@T+D` — stall rank `R` at `T` for `D` seconds;
    /// * `xfail:F->T@S..U*N` — fail the first `N` attempts of transfers
    ///   `F -> T` ready inside `[S, U)` (`*N` defaults to 1, `..U` to an
    ///   open window, and `F`/`T` may be `*` for any rank);
    /// * `delay:F->T@S..U+D` — delay matching transfers by `D` seconds.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanParseError> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, body) = part
                .split_once(':')
                .ok_or_else(|| FaultPlanParseError(format!("missing `:` in {part:?}")))?;
            let (target, timing) = body
                .split_once('@')
                .ok_or_else(|| FaultPlanParseError(format!("missing `@` in {part:?}")))?;
            match kind {
                "kill" => {
                    let rank = parse_rank(target, part)?;
                    let at = parse_secs(timing, part)?;
                    plan.push(FaultEvent::GpuKill {
                        rank,
                        at: SimTime::from_secs(at),
                    });
                }
                "add" => {
                    let rank = parse_rank(target, part)?;
                    let at = parse_secs(timing, part)?;
                    plan.push(FaultEvent::GpuAdd {
                        rank,
                        at: SimTime::from_secs(at),
                    });
                }
                "stall" => {
                    let rank = parse_rank(target, part)?;
                    let (at, dur) = timing
                        .split_once('+')
                        .ok_or_else(|| FaultPlanParseError(format!("missing `+` in {part:?}")))?;
                    plan.push(FaultEvent::RankStall {
                        rank,
                        at: SimTime::from_secs(parse_secs(at, part)?),
                        duration: SimDuration::from_secs(parse_secs(dur, part)?),
                    });
                }
                "xfail" => {
                    let (from, to) = parse_route(target, part)?;
                    let (window, fails) = match timing.split_once('*') {
                        Some((w, n)) => (
                            w,
                            n.parse::<u32>().map_err(|_| {
                                FaultPlanParseError(format!("bad fail count in {part:?}"))
                            })?,
                        ),
                        None => (timing, 1),
                    };
                    let (start, until) = parse_window(window, part)?;
                    plan.push(FaultEvent::TransferFail {
                        from,
                        to,
                        start,
                        until,
                        fails,
                    });
                }
                "delay" => {
                    let (from, to) = parse_route(target, part)?;
                    let (window, extra) = timing
                        .rsplit_once('+')
                        .ok_or_else(|| FaultPlanParseError(format!("missing `+` in {part:?}")))?;
                    let (start, until) = parse_window(window, part)?;
                    plan.push(FaultEvent::TransferDelay {
                        from,
                        to,
                        start,
                        until,
                        extra: SimDuration::from_secs(parse_secs(extra, part)?),
                    });
                }
                other => {
                    return Err(FaultPlanParseError(format!(
                        "unknown fault kind {other:?} (expected kill, add, stall, xfail, or delay)"
                    )));
                }
            }
        }
        Ok(plan)
    }
}

fn parse_secs(s: &str, ctx: &str) -> Result<f64, FaultPlanParseError> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| FaultPlanParseError(format!("bad time {s:?} in {ctx:?}")))
}

fn parse_rank(s: &str, ctx: &str) -> Result<u32, FaultPlanParseError> {
    s.trim()
        .parse::<u32>()
        .map_err(|_| FaultPlanParseError(format!("bad rank {s:?} in {ctx:?}")))
}

fn parse_route(s: &str, ctx: &str) -> Result<(Option<u32>, Option<u32>), FaultPlanParseError> {
    let (f, t) = s
        .split_once("->")
        .ok_or_else(|| FaultPlanParseError(format!("missing `->` in {ctx:?}")))?;
    let side = |x: &str| -> Result<Option<u32>, FaultPlanParseError> {
        let x = x.trim();
        if x == "*" {
            Ok(None)
        } else {
            parse_rank(x, ctx).map(Some)
        }
    };
    Ok((side(f)?, side(t)?))
}

fn parse_window(s: &str, ctx: &str) -> Result<(SimTime, SimTime), FaultPlanParseError> {
    match s.split_once("..") {
        Some((a, b)) => Ok((
            SimTime::from_secs(parse_secs(a, ctx)?),
            SimTime::from_secs(parse_secs(b, ctx)?),
        )),
        None => Ok((SimTime::from_secs(parse_secs(s, ctx)?), forever())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_record_events() {
        let plan = FaultPlan::new()
            .kill(2, 1e-3)
            .stall(1, 2e-3, 5e-4)
            .transfer_fail(Some(0), Some(3), 0.0, 1.0, 2)
            .transfer_delay(None, Some(1), 0.0, 1.0, 1e-4);
        assert_eq!(plan.events().len(), 4);
        assert!(plan.has_kills());
        assert_eq!(plan.kill_time(2), Some(SimTime::from_secs(1e-3)));
        assert_eq!(plan.kill_time(0), None);
        assert_eq!(plan.stalls_for(1).len(), 1);
        assert!(plan.stalls_for(0).is_empty());
    }

    #[test]
    fn transfer_outcomes_respect_window_attempts_and_route() {
        let plan = FaultPlan::new().transfer_fail(Some(0), Some(3), 1.0, 2.0, 2);
        let t = SimTime::from_secs(1.5);
        assert_eq!(plan.transfer_outcome(0, 3, t, 0), TransferOutcome::Fail);
        assert_eq!(plan.transfer_outcome(0, 3, t, 1), TransferOutcome::Fail);
        assert_eq!(plan.transfer_outcome(0, 3, t, 2), TransferOutcome::Deliver);
        // Outside the window or off-route: delivered.
        assert_eq!(
            plan.transfer_outcome(0, 3, SimTime::from_secs(2.5), 0),
            TransferOutcome::Deliver
        );
        assert_eq!(plan.transfer_outcome(1, 3, t, 0), TransferOutcome::Deliver);
    }

    #[test]
    fn delays_accumulate_and_lose_to_failures() {
        let plan = FaultPlan::new()
            .transfer_delay(None, None, 0.0, 10.0, 1e-3)
            .transfer_delay(Some(0), None, 0.0, 10.0, 2e-3)
            .transfer_fail(Some(0), Some(1), 0.0, 10.0, 1);
        match plan.transfer_outcome(2, 1, SimTime::from_secs(1.0), 0) {
            TransferOutcome::Delay(d) => assert!((d.as_secs() - 1e-3).abs() < 1e-12),
            other => panic!("expected delay, got {other:?}"),
        }
        match plan.transfer_outcome(0, 2, SimTime::from_secs(1.0), 0) {
            TransferOutcome::Delay(d) => assert!((d.as_secs() - 3e-3).abs() < 1e-12),
            other => panic!("expected delay, got {other:?}"),
        }
        assert_eq!(
            plan.transfer_outcome(0, 1, SimTime::from_secs(1.0), 0),
            TransferOutcome::Fail
        );
    }

    #[test]
    fn generated_plans_are_seed_deterministic_and_leave_a_survivor() {
        for seed in 0..32u64 {
            let a = FaultPlan::generate(seed, 4, 5e-3);
            let b = FaultPlan::generate(seed, 4, 5e-3);
            assert_eq!(a, b, "seed {seed} not reproducible");
            let kills: Vec<u32> = a
                .events()
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::GpuKill { rank, .. } => Some(*rank),
                    _ => None,
                })
                .collect();
            assert!(kills.len() < 4, "seed {seed} killed every rank");
            let mut unique = kills.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), kills.len(), "seed {seed} repeated a victim");
        }
        assert_ne!(
            FaultPlan::generate(1, 4, 5e-3),
            FaultPlan::generate(2, 4, 5e-3)
        );
    }

    #[test]
    fn add_events_are_recorded_parsed_and_queried() {
        let plan = FaultPlan::new().add(4, 2e-3).add(5, 1e-3).add(4, 1.5e-3);
        assert!(plan.has_adds());
        assert!(!plan.has_kills());
        assert_eq!(plan.add_time(4), Some(SimTime::from_secs(1.5e-3)));
        assert_eq!(plan.add_time(5), Some(SimTime::from_secs(1e-3)));
        assert_eq!(plan.add_time(0), None);
        assert_eq!(plan.added_ranks(), vec![4, 5]);

        let parsed = FaultPlan::parse("add:4@2e-3; kill:1@1e-3").unwrap();
        assert_eq!(parsed.add_time(4), Some(SimTime::from_secs(2e-3)));
        assert_eq!(parsed.added_ranks(), vec![4]);
        assert!(parsed.has_kills());
        for bad in ["add:4", "add:x@0", "add:4@-1"] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn elastic_plans_extend_the_base_schedule_deterministically() {
        for seed in 0..16u64 {
            let base = FaultPlan::generate(seed, 4, 5e-3);
            let elastic = FaultPlan::generate_elastic(seed, 4, 2, 5e-3);
            assert_eq!(
                elastic,
                FaultPlan::generate_elastic(seed, 4, 2, 5e-3),
                "seed {seed} not reproducible"
            );
            // The base chaos schedule is untouched; only adds are appended.
            assert_eq!(&elastic.events()[..base.events().len()], base.events());
            assert_eq!(elastic.added_ranks(), vec![4, 5]);
            assert!(!base.has_adds(), "generate must never emit adds");
            for r in elastic.added_ranks() {
                let at = elastic.add_time(r).unwrap();
                assert!(at >= SimTime::ZERO && at < SimTime::from_secs(5e-3));
            }
        }
    }

    #[test]
    fn single_rank_plans_never_kill() {
        for seed in 0..16u64 {
            assert!(!FaultPlan::generate(seed, 1, 1e-3).has_kills());
        }
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let plan = FaultPlan::parse(
            "kill:2@0.5e-3; stall:1@1e-3+2e-3; xfail:0->2@0..1e-2*3; delay:*->1@0+5e-4",
        )
        .unwrap();
        assert_eq!(plan.events().len(), 4);
        assert_eq!(plan.kill_time(2), Some(SimTime::from_secs(0.5e-3)));
        assert_eq!(
            plan.transfer_outcome(0, 2, SimTime::from_secs(5e-3), 2),
            TransferOutcome::Fail
        );
        assert_eq!(
            plan.transfer_outcome(0, 2, SimTime::from_secs(5e-3), 3),
            TransferOutcome::Deliver
        );
        match plan.transfer_outcome(3, 1, SimTime::from_secs(100.0), 0) {
            TransferOutcome::Delay(d) => assert!((d.as_secs() - 5e-4).abs() < 1e-12),
            other => panic!("expected delay, got {other:?}"),
        }
        // Empty pieces are tolerated.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "explode:1@0",
            "kill:1",
            "kill:x@0",
            "kill:1@-1",
            "kill:1@nan",
            "stall:1@0",
            "xfail:0@0",
            "xfail:0->1@0*x",
            "delay:0->1@0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
