//! Address-level memory-access analysis: derive coalescing from actual
//! addresses.
//!
//! The `charge_read`/`charge_read_uncoalesced` API asks the kernel author
//! to *declare* whether an access pattern coalesces. This module derives
//! it instead: a kernel records the per-lane addresses of a warp's memory
//! instruction and the analyzer applies the GT200's real coalescing
//! algorithm (CUDA compute capability 1.2/1.3, the hardware of the
//! paper's cluster):
//!
//! 1. process each *half-warp* (16 lanes) independently;
//! 2. start with the segment size implied by the element width
//!    (1 byte → 32 B, 2 bytes → 64 B, 4+ bytes → 128 B);
//! 3. issue one transaction per distinct aligned segment touched by the
//!    half-warp's active lanes;
//! 4. shrink each transaction to 64 B / 32 B when all of its lanes fall in
//!    the smaller aligned window.
//!
//! The derived [`CoalescingSummary`] reports the bytes the memory system
//! actually moves versus the bytes the lanes asked for — the waste factor
//! the hand-declared model approximates with
//! [`GpuSpec::uncoalesced_penalty`](crate::GpuSpec::uncoalesced_penalty).

use std::collections::BTreeSet;

/// Result of coalescing analysis for one or more warp memory operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalescingSummary {
    /// Memory transactions issued.
    pub transactions: u64,
    /// Bytes moved over the memory bus (transaction granularity).
    pub bytes_moved: u64,
    /// Bytes the lanes actually requested.
    pub bytes_useful: u64,
}

impl CoalescingSummary {
    /// Bus bytes per useful byte (1.0 = perfectly coalesced).
    pub fn waste_factor(&self) -> f64 {
        if self.bytes_useful == 0 {
            return 1.0;
        }
        self.bytes_moved as f64 / self.bytes_useful as f64
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: CoalescingSummary) {
        self.transactions += other.transactions;
        self.bytes_moved += other.bytes_moved;
        self.bytes_useful += other.bytes_useful;
    }
}

/// The half-warp width of the GT200's coalescing hardware.
const HALF_WARP: usize = 16;

fn natural_segment(elem_bytes: u64) -> u64 {
    match elem_bytes {
        0 | 1 => 32,
        2 => 64,
        _ => 128,
    }
}

/// Analyze one warp-wide memory operation: `addresses[i]` is the byte
/// address accessed by lane `i` (up to 32 lanes; fewer means the rest are
/// inactive), each reading/writing `elem_bytes` bytes.
///
/// ```
/// use gpmr_sim_gpu::coalesce_warp;
///
/// // Unit-stride f32 reads coalesce perfectly...
/// let seq: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// assert_eq!(coalesce_warp(&seq, 4).waste_factor(), 1.0);
///
/// // ...while scattered reads move 8x the useful bytes on a GT200.
/// let scattered: Vec<u64> = (0..32).map(|i| i * 4096).collect();
/// assert_eq!(coalesce_warp(&scattered, 4).waste_factor(), 8.0);
/// ```
pub fn coalesce_warp(addresses: &[u64], elem_bytes: u64) -> CoalescingSummary {
    let elem = elem_bytes.max(1);
    let mut summary = CoalescingSummary::default();
    for half in addresses.chunks(HALF_WARP) {
        if half.is_empty() {
            continue;
        }
        summary.bytes_useful += elem * half.len() as u64;
        let seg = natural_segment(elem);
        // Distinct aligned segments touched by this half-warp.
        let mut segments: BTreeSet<u64> = BTreeSet::new();
        for &a in half {
            segments.insert(a / seg);
            // An element straddling a segment boundary touches the next
            // one too.
            if (a + elem - 1) / seg != a / seg {
                segments.insert((a + elem - 1) / seg);
            }
        }
        for &s in &segments {
            // Lanes belonging to this segment.
            let lo = half
                .iter()
                .filter(|&&a| a / seg == s)
                .copied()
                .min()
                .unwrap_or(s * seg);
            let hi = half
                .iter()
                .filter(|&&a| a / seg == s)
                .map(|&a| a + elem)
                .max()
                .unwrap_or(s * seg + seg);
            // Shrink 128 -> 64 -> 32 while the touched range fits an
            // aligned smaller window.
            let mut size = seg;
            while size > 32 {
                let smaller = size / 2;
                let base = (lo / smaller) * smaller;
                if hi <= base + smaller {
                    size = smaller;
                } else {
                    break;
                }
            }
            summary.transactions += 1;
            summary.bytes_moved += size;
        }
    }
    summary
}

/// Analyze a whole block-wide access: `lane_addr(i)` gives the address
/// accessed by logical thread `i` of `threads`, each moving `elem_bytes`.
/// Threads are grouped into 32-lane warps.
pub fn coalesce_block(
    threads: usize,
    elem_bytes: u64,
    lane_addr: impl Fn(usize) -> u64,
) -> CoalescingSummary {
    let mut total = CoalescingSummary::default();
    let mut warp: Vec<u64> = Vec::with_capacity(32);
    for t in 0..threads {
        warp.push(lane_addr(t));
        if warp.len() == 32 {
            total.merge(coalesce_warp(&warp, elem_bytes));
            warp.clear();
        }
    }
    if !warp.is_empty() {
        total.merge(coalesce_warp(&warp, elem_bytes));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_f32_access_is_one_transaction_per_half_warp() {
        // 32 lanes reading consecutive f32s: 2 half-warps, each fitting a
        // 64-byte aligned window (16 lanes x 4 bytes).
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let s = coalesce_warp(&addrs, 4);
        assert_eq!(s.transactions, 2);
        assert_eq!(s.bytes_moved, 128);
        assert_eq!(s.bytes_useful, 128);
        assert!((s.waste_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_access_is_one_shrunk_transaction() {
        // Every lane reads the same 4-byte word: one 32-byte transaction
        // per half-warp.
        let addrs = vec![1024u64; 32];
        let s = coalesce_warp(&addrs, 4);
        assert_eq!(s.transactions, 2);
        assert_eq!(s.bytes_moved, 64);
        assert_eq!(s.bytes_useful, 128);
    }

    #[test]
    fn stride_two_doubles_bus_traffic() {
        let unit: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let strided: Vec<u64> = (0..32).map(|i| i * 8).collect();
        let s1 = coalesce_warp(&unit, 4);
        let s2 = coalesce_warp(&strided, 4);
        assert_eq!(s1.bytes_useful, s2.bytes_useful);
        assert!(s2.bytes_moved >= 2 * s1.bytes_moved);
    }

    #[test]
    fn random_scatter_approaches_one_transaction_per_lane() {
        // Addresses far apart: every lane pays its own (shrunk) 32-byte
        // transaction.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        let s = coalesce_warp(&addrs, 4);
        assert_eq!(s.transactions, 32);
        assert_eq!(s.bytes_moved, 32 * 32);
        assert!((s.waste_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn waste_factor_matches_the_declared_penalty_model() {
        // The hand-declared model charges `uncoalesced_penalty` (8x on
        // GT200) for scattered 4-byte accesses — exactly the analyzer's
        // waste factor for full scatter.
        let spec = crate::GpuSpec::gt200();
        let addrs: Vec<u64> = (0..32).map(|i| i * 1000).collect();
        let s = coalesce_warp(&addrs, 4);
        assert!((s.waste_factor() - spec.uncoalesced_penalty).abs() < 1e-9);
    }

    #[test]
    fn byte_accesses_use_32_byte_segments() {
        // 16 consecutive bytes in one half-warp: one 32-byte transaction.
        let addrs: Vec<u64> = (0..16).collect();
        let s = coalesce_warp(&addrs, 1);
        assert_eq!(s.transactions, 1);
        assert_eq!(s.bytes_moved, 32);
    }

    #[test]
    fn straddling_elements_touch_two_segments() {
        // An 8-byte element starting 4 bytes before a 128-byte boundary.
        let addrs = vec![124u64];
        let s = coalesce_warp(&addrs, 8);
        assert_eq!(s.transactions, 2);
    }

    #[test]
    fn misaligned_sequential_access_pays_extra() {
        // The classic compute-1.x pitfall: a one-element offset breaks
        // perfect coalescing.
        let aligned: Vec<u64> = (0..16).map(|i| i * 4).collect();
        let shifted: Vec<u64> = (0..16).map(|i| 4 + i * 4).collect();
        let s_a = coalesce_warp(&aligned, 4);
        let s_b = coalesce_warp(&shifted, 4);
        assert!(s_b.bytes_moved > s_a.bytes_moved);
    }

    #[test]
    fn block_analysis_covers_partial_warps() {
        // 48 threads = one full warp + one half-full warp.
        let s = coalesce_block(48, 4, |t| (t as u64) * 4);
        assert_eq!(s.bytes_useful, 48 * 4);
        assert!(s.transactions >= 3);
        // Still fully coalesced.
        assert!((s.waste_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_access_is_free() {
        let s = coalesce_warp(&[], 4);
        assert_eq!(s, CoalescingSummary::default());
        assert_eq!(s.waste_factor(), 1.0);
    }
}
