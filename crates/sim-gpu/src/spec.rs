//! GPU hardware descriptions.
//!
//! A [`GpuSpec`] captures everything the timing model needs to know about a
//! device. The preset of record is [`GpuSpec::gt200`], the GPU used by the
//! GPMR paper (NVIDIA Tesla S1070, one GT200 per slot); [`GpuSpec::fermi`]
//! is provided for ablation studies (notably: hardware floating-point
//! atomics, which the GT200 lacks and which forced the paper's per-block
//! accumulation pools in K-Means).

/// Static description of a simulated GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing/architecture name, for display only.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Scalar cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Usable global-memory capacity in bytes.
    pub mem_capacity: u64,
    /// Peak global-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block (512 on GT200).
    pub max_threads_per_block: u32,
    /// SIMD width of a warp.
    pub warp_size: u32,
    /// Fixed cost of launching a kernel, in seconds.
    pub kernel_launch_overhead_s: f64,
    /// Global-memory atomic operations retired per second (serialization
    /// cost of contended atomics).
    pub atomic_throughput: f64,
    /// Whether the device supports floating-point atomics in hardware.
    /// GT200 does not; Fermi and later do.
    pub has_fp_atomics: bool,
    /// Effective slowdown multiplier applied to bytes moved by fully
    /// uncoalesced accesses (a 4-byte load costing a 32-byte transaction).
    pub uncoalesced_penalty: f64,
}

impl GpuSpec {
    /// The GPU of the GPMR paper: one GT200 of an NVIDIA Tesla S1070.
    ///
    /// 30 SMs x 8 SPs @ 1.296 GHz, 102 GB/s, 16 kB shared memory and 16 k
    /// registers per SM. The paper caps usable memory at 1 GB for its
    /// experiments, so the preset does too.
    pub fn gt200() -> Self {
        GpuSpec {
            name: "GT200 (Tesla S1070)",
            sm_count: 30,
            cores_per_sm: 8,
            clock_ghz: 1.296,
            mem_capacity: 1 << 30, // paper limits usage to 1 GB
            mem_bandwidth: 102.0e9,
            shared_mem_per_sm: 16 * 1024,
            registers_per_sm: 16 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            warp_size: 32,
            kernel_launch_overhead_s: 7.0e-6,
            atomic_throughput: 0.6e9,
            has_fp_atomics: false,
            uncoalesced_penalty: 8.0,
        }
    }

    /// A Fermi-class device (GF100) for ablation experiments: FP atomics,
    /// larger shared memory, more registers, faster atomics.
    pub fn fermi() -> Self {
        GpuSpec {
            name: "GF100 (Fermi)",
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            mem_capacity: 3 << 30,
            mem_bandwidth: 144.0e9,
            shared_mem_per_sm: 48 * 1024,
            registers_per_sm: 32 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            warp_size: 32,
            kernel_launch_overhead_s: 5.0e-6,
            atomic_throughput: 2.4e9,
            has_fp_atomics: true,
            uncoalesced_penalty: 4.0,
        }
    }

    /// Peak single-precision throughput in FLOP/s, counting fused
    /// multiply-add as two operations.
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9 * 2.0
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Override the usable memory capacity (the paper runs with a 1 GB cap
    /// even though the physical cards have 4 GB).
    pub fn with_mem_capacity(mut self, bytes: u64) -> Self {
        self.mem_capacity = bytes;
        self
    }

    /// Scale every throughput and the memory capacity down by `s`, keeping
    /// fixed latencies (kernel launch overhead) unchanged.
    ///
    /// This is the simulator's workload-scaling trick: a workload shrunk
    /// by `s` on hardware scaled by `s` produces the *same* simulated
    /// times as the full workload on full hardware — per-chunk work,
    /// transfer times, and capacity pressure all shrink together while
    /// fixed overheads keep their real weight. The harness uses it so
    /// laptop-feasible runs reproduce the paper's full-scale curves.
    pub fn scaled(mut self, s: f64) -> Self {
        let s = s.max(1.0);
        self.clock_ghz /= s;
        self.mem_bandwidth /= s;
        self.atomic_throughput /= s;
        self.mem_capacity = ((self.mem_capacity as f64 / s) as u64).max(1 << 20);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt200_matches_paper_hardware() {
        let s = GpuSpec::gt200();
        assert_eq!(s.sm_count, 30);
        assert_eq!(s.max_threads_per_block, 512);
        assert!(!s.has_fp_atomics);
        assert_eq!(s.mem_capacity, 1 << 30);
        // 30 * 8 * 1.296e9 * 2 = 622.08 GFLOP/s
        assert!((s.peak_flops() - 622.08e9).abs() < 1e6);
        assert_eq!(s.max_warps_per_sm(), 32);
    }

    #[test]
    fn fermi_has_fp_atomics() {
        assert!(GpuSpec::fermi().has_fp_atomics);
    }

    #[test]
    fn capacity_override() {
        let s = GpuSpec::gt200().with_mem_capacity(512 << 20);
        assert_eq!(s.mem_capacity, 512 << 20);
    }
}
