//! The persistent host worker pool backing every kernel launch.
//!
//! The seed implementation spawned (and joined) a fresh set of OS threads
//! for *every* kernel launch. At paper scale — tens of thousands of
//! launches per job — thread creation dominated host-side wall clock. This
//! module replaces that with one process-wide pool, created lazily on the
//! first parallel launch and shared by every simulated [`crate::Gpu`],
//! the primitives, and the CPU baselines.
//!
//! Determinism contract: [`run_indexed`] returns results **in task-index
//! order**, and nothing about scheduling leaks into outputs. Simulated
//! costs are integer sums, so kernel timing is bit-identical no matter how
//! many pool workers exist or how tasks interleave. `GPMR_WORKER_THREADS`
//! caps the pool size; `GPMR_EXEC_BACKEND=spawn` restores the old
//! spawn-per-launch behaviour (kept for benchmarking the difference).

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Condvar, Mutex, Once, OnceLock};

/// How parallel work inside a launch is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecBackend {
    /// The persistent worker pool (default).
    Pool,
    /// A fresh scoped thread per worker span, per launch — the seed
    /// behaviour, kept selectable so benches can measure launch overhead
    /// before/after in one process.
    Spawn,
}

/// Unset sentinel for the backend atomic; resolved from the environment on
/// first read.
const BACKEND_UNSET: u8 = u8::MAX;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The active execution backend (`GPMR_EXEC_BACKEND=spawn` selects
/// [`ExecBackend::Spawn`]; anything else defaults to the pool).
pub fn exec_backend() -> ExecBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => ExecBackend::Pool,
        1 => ExecBackend::Spawn,
        _ => {
            let resolved = match std::env::var("GPMR_EXEC_BACKEND").as_deref() {
                Ok("spawn") => ExecBackend::Spawn,
                _ => ExecBackend::Pool,
            };
            set_exec_backend(resolved);
            resolved
        }
    }
}

/// Select the execution backend at runtime (overrides the environment).
pub fn set_exec_backend(backend: ExecBackend) {
    let v = match backend {
        ExecBackend::Pool => 0,
        ExecBackend::Spawn => 1,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// Default host parallelism per launch: `GPMR_WORKER_THREADS` if set to a
/// positive integer, else the machine's available parallelism.
pub fn worker_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("GPMR_WORKER_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(4)
            })
    })
}

/// A queued unit of work. Tasks are `'static` from the queue's point of
/// view; [`run_indexed`] guarantees the borrows behind that lifetime stay
/// valid until the task has reported completion.
type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Pool {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

impl Pool {
    fn submit(&self, tasks: impl IntoIterator<Item = Task>) {
        let mut q = self.queue.lock().unwrap();
        q.extend(tasks);
        drop(q);
        self.available.notify_all();
    }
}

thread_local! {
    /// True on pool worker threads: nested `run_indexed` calls from inside
    /// a task run inline rather than deadlocking on a saturated pool.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn worker_loop(pool: &'static Pool) {
    IS_POOL_WORKER.with(|f| f.set(true));
    loop {
        let task = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = pool.available.wait(q).unwrap();
            }
        };
        // Tasks catch their own panics; this guard only keeps the worker
        // alive if a panic payload's Drop impl itself panics.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static STARTED: Once = Once::new();
    let pool = POOL.get_or_init(Pool::default);
    STARTED.call_once(|| {
        for i in 0..worker_threads() {
            std::thread::Builder::new()
                .name(format!("gpmr-pool-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
    });
    pool
}

/// Run `f(0..n)` on the persistent pool, returning the results in index
/// order. Panics in `f` are re-raised on the caller after every task has
/// finished. Calls from inside a pool task (or with `n <= 1`) run inline.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n <= 1 || IS_POOL_WORKER.with(|flag| flag.get()) {
        return (0..n).map(f).collect();
    }

    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
    let f = &f;
    let tasks = (0..n).map(|i| {
        let tx = tx.clone();
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(i)));
            // The caller only hangs up after draining all n messages, so
            // this send cannot fail while the task is alive.
            let _ = tx.send((i, result));
        });
        // SAFETY: the task borrows `f` and `tx` from this stack frame. The
        // drain loop below does not return (or unwind) until it has
        // received one completion message per submitted task, so every
        // borrow strictly outlives the task's execution.
        unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) }
    });
    global().submit(tasks);

    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (i, result) = rx.recv().expect("pool worker disconnected");
        slots[i] = Some(result);
    }

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("pool task completed twice or not at all") {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(64, |i| {
            // Stagger finish times so out-of-order completion is likely.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let out = run_indexed(worker_threads() * 4, |i| {
            run_indexed(8, move |j| i * 8 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..worker_threads() * 4)
            .map(|i| (0..8).map(|j| i * 8 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "task 13 exploded")]
    fn panics_propagate_to_the_caller() {
        run_indexed(32, |i| {
            if i == 13 {
                panic!("task 13 exploded");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(16, |i| {
                if i % 2 == 0 {
                    panic!("even tasks fail");
                }
                i
            })
        });
        assert!(result.is_err());
        // The pool still works after the panic.
        assert_eq!(run_indexed(16, |i| i), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn backend_round_trips() {
        let before = exec_backend();
        set_exec_backend(ExecBackend::Spawn);
        assert_eq!(exec_backend(), ExecBackend::Spawn);
        set_exec_backend(ExecBackend::Pool);
        assert_eq!(exec_backend(), ExecBackend::Pool);
        set_exec_backend(before);
    }
}
