//! Kernel launches and block-granularity execution.
//!
//! Simulated kernels are written at *block* granularity: a kernel is a Rust
//! closure invoked once per block with a [`BlockCtx`], mirroring how
//! GPU-efficient code is actually structured (the paper's benchmarks all
//! use block-wide cooperation — tiles, persistent threads, block
//! reductions). Per-thread SIMD detail is folded into the cost model: the
//! closure does the block's real work on host data and *charges* the
//! memory traffic, arithmetic, and atomics it would have issued.
//!
//! Blocks run in parallel on host threads (results are assembled in block
//! order, so execution is deterministic), and the aggregate
//! [`KernelCost`] is converted to simulated time by the device.

use crate::cost::KernelCost;
use crate::error::{SimGpuError, SimGpuResult};
use crate::spec::GpuSpec;

/// Grid/block shape and per-block resource declaration for one launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Shared memory per block, in bytes. Allocations made through
    /// [`BlockCtx::shared_alloc`] must fit in this declaration.
    pub shared_bytes: u32,
    /// Registers per thread (occupancy input). Defaults to 16.
    pub regs_per_thread: u32,
}

impl LaunchConfig {
    /// A grid of `blocks` blocks of `threads` threads.
    pub fn grid(blocks: u32, threads: u32) -> Self {
        LaunchConfig {
            grid_blocks: blocks.max(1),
            block_threads: threads.max(1),
            shared_bytes: 0,
            regs_per_thread: 16,
        }
    }

    /// A grid sized so that `items` items are covered with
    /// `items_per_block` items handled by each `threads`-thread block.
    pub fn for_items(items: usize, items_per_block: usize, threads: u32) -> Self {
        let blocks = items.div_ceil(items_per_block.max(1)).max(1);
        Self::grid(blocks as u32, threads)
    }

    /// Declare per-block shared memory.
    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Declare per-thread register use.
    pub fn with_regs_per_thread(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Check the configuration against hardware limits.
    pub fn validate(&self, spec: &GpuSpec) -> SimGpuResult<()> {
        if self.grid_blocks == 0 || self.block_threads == 0 {
            return Err(SimGpuError::InvalidLaunch(
                "grid and block dimensions must be non-zero".into(),
            ));
        }
        if self.block_threads > spec.max_threads_per_block {
            return Err(SimGpuError::InvalidLaunch(format!(
                "{} threads per block exceeds device maximum {}",
                self.block_threads, spec.max_threads_per_block
            )));
        }
        if self.shared_bytes > spec.shared_mem_per_sm {
            return Err(SimGpuError::InvalidLaunch(format!(
                "{} bytes of shared memory exceeds per-SM capacity {}",
                self.shared_bytes, spec.shared_mem_per_sm
            )));
        }
        Ok(())
    }
}

/// Execution context handed to the kernel closure, one per block.
///
/// Provides the block's coordinates, shared-memory allocation, cooperative
/// reduction helpers, and the cost-accounting API. All `charge_*` methods
/// record work for the timing model; they do not move data.
pub struct BlockCtx<'a> {
    /// Index of this block within the grid.
    pub block_idx: u32,
    /// Number of blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    spec: &'a GpuSpec,
    shared_declared: u32,
    shared_used: u32,
    cost: KernelCost,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(spec: &'a GpuSpec, cfg: &LaunchConfig, block_idx: u32) -> Self {
        BlockCtx {
            block_idx,
            grid_blocks: cfg.grid_blocks,
            block_threads: cfg.block_threads,
            spec,
            shared_declared: cfg.shared_bytes,
            shared_used: 0,
            cost: KernelCost::ZERO,
        }
    }

    /// SIMD width of a warp on this device.
    pub fn warp_size(&self) -> u32 {
        self.spec.warp_size
    }

    /// Number of warps in this block.
    pub fn warps_per_block(&self) -> u32 {
        self.block_threads.div_ceil(self.spec.warp_size)
    }

    /// Device description (for kernels that adapt to hardware, e.g. the
    /// paper's K-Means choosing per-block pools when FP atomics are
    /// missing).
    pub fn spec(&self) -> &GpuSpec {
        self.spec
    }

    /// Range of items `[start, end)` owned by this block when `total`
    /// items are divided as evenly as possible over the grid.
    pub fn item_range(&self, total: usize) -> std::ops::Range<usize> {
        let per = total.div_ceil(self.grid_blocks as usize);
        let start = (self.block_idx as usize * per).min(total);
        let end = (start + per).min(total);
        start..end
    }

    // ---- cost accounting -------------------------------------------------

    /// Charge a coalesced global-memory read of `elems` elements of `T`.
    pub fn charge_read<T>(&mut self, elems: usize) {
        self.cost.bytes_coalesced += (elems * std::mem::size_of::<T>()) as u64;
    }

    /// Charge a coalesced global-memory write of `elems` elements of `T`.
    pub fn charge_write<T>(&mut self, elems: usize) {
        self.cost.bytes_coalesced += (elems * std::mem::size_of::<T>()) as u64;
    }

    /// Charge an *uncoalesced* read (scattered addresses; each element pays
    /// the transaction-waste penalty).
    pub fn charge_read_uncoalesced<T>(&mut self, elems: usize) {
        self.cost.bytes_uncoalesced += (elems * std::mem::size_of::<T>()) as u64;
    }

    /// Charge an *uncoalesced* write.
    pub fn charge_write_uncoalesced<T>(&mut self, elems: usize) {
        self.cost.bytes_uncoalesced += (elems * std::mem::size_of::<T>()) as u64;
    }

    /// Charge `n` arithmetic operations.
    pub fn charge_flops(&mut self, n: u64) {
        self.cost.flops += n;
    }

    /// Charge `n` global-memory atomic operations.
    pub fn charge_atomics(&mut self, n: u64) {
        self.cost.atomic_ops += n;
    }

    /// Charge `accesses` shared-memory accesses of `T` with lane stride
    /// `stride_elems`, modelling bank conflicts: GT200 shared memory has
    /// 16 banks of 4-byte words, so a half-warp whose lanes hit the same
    /// bank serializes by the conflict degree `gcd(stride_words, 16)`
    /// (stride 1 → conflict-free; stride 16 → fully serialized 16-way).
    /// Charged as extra cycles (flops).
    pub fn charge_shared<T>(&mut self, accesses: usize, stride_elems: usize) {
        let stride_words = (stride_elems * std::mem::size_of::<T>()).div_ceil(4).max(1);
        let degree = gcd(stride_words as u64, 16);
        self.cost.flops += accesses as u64 * degree;
    }

    /// Record a memory operation by the *actual byte addresses* each lane
    /// touches and charge the bus traffic the GT200 coalescing rules
    /// derive for it (one warp per 32 addresses; see [`crate::access`]).
    /// The emergent alternative to declaring `charge_read` vs
    /// `charge_read_uncoalesced` by hand.
    pub fn charge_addressed<T>(&mut self, addresses: &[u64]) -> crate::access::CoalescingSummary {
        let mut total = crate::access::CoalescingSummary::default();
        for warp in addresses.chunks(self.spec.warp_size as usize) {
            total.merge(crate::access::coalesce_warp(
                warp,
                std::mem::size_of::<T>() as u64,
            ));
        }
        self.cost.bytes_coalesced += total.bytes_moved;
        total
    }

    /// Cost recorded by this block so far.
    pub fn cost(&self) -> KernelCost {
        self.cost
    }

    // ---- shared memory ---------------------------------------------------

    /// Allocate `len` elements of block-shared scratch memory.
    ///
    /// Fails if the running total exceeds the launch configuration's
    /// declared `shared_bytes` — the same error a real kernel would hit at
    /// launch time with a too-small dynamic shared-memory argument.
    pub fn shared_alloc<T: Clone + Default>(&mut self, len: usize) -> SimGpuResult<Vec<T>> {
        let bytes = (len * std::mem::size_of::<T>()) as u32;
        if self.shared_used + bytes > self.shared_declared {
            return Err(SimGpuError::SharedMemExceeded {
                requested: self.shared_used + bytes,
                declared: self.shared_declared,
            });
        }
        self.shared_used += bytes;
        Ok(vec![T::default(); len])
    }

    // ---- cooperative helpers ----------------------------------------------

    /// Block-wide tree reduction over `items` with `op`, charging
    /// the log-depth arithmetic a shared-memory reduction would cost.
    /// Returns `None` for an empty input.
    pub fn block_reduce<T, F>(&mut self, items: &[T], op: F) -> Option<T>
    where
        T: Copy,
        F: Fn(T, T) -> T,
    {
        if items.is_empty() {
            return None;
        }
        // Tree reduction: n-1 combines, executed in ceil(log2 n) steps by
        // block_threads lanes. Charge the combines as flops.
        self.cost.flops += (items.len() - 1) as u64;
        let mut acc = items[0];
        for &it in &items[1..] {
            acc = op(acc, it);
        }
        Some(acc)
    }

    /// Warp-wide coalesced sum over a strided value range, as used by the
    /// paper's Word Occurrence reducer (one key per warp, lanes summing in
    /// a coalesced fashion then a warp reduction). Charges a coalesced read
    /// of the values plus the warp-combine arithmetic.
    pub fn warp_sum_u32(&mut self, values: &[u32]) -> u64 {
        self.charge_read::<u32>(values.len());
        self.cost.flops += values.len() as u64 + u64::from(self.spec.warp_size.ilog2());
        values.iter().map(|&v| v as u64).sum()
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Everything a finished launch reports back.
#[derive(Debug)]
pub struct Launch<R> {
    /// Per-block outputs, in block order.
    pub outputs: Vec<R>,
    /// Aggregate cost over all blocks.
    pub cost: KernelCost,
    /// Occupancy fraction achieved by the configuration.
    pub occupancy: f64,
}

/// Execute `f` for every block of `cfg`, in parallel on up to
/// `worker_threads` host threads, returning per-block outputs in block
/// order plus the aggregate cost. Deterministic regardless of thread count.
pub(crate) fn run_blocks<R, F>(
    spec: &GpuSpec,
    cfg: &LaunchConfig,
    worker_threads: usize,
    f: &F,
) -> SimGpuResult<(Vec<R>, KernelCost)>
where
    R: Send,
    F: Fn(&mut BlockCtx) -> SimGpuResult<R> + Sync,
{
    cfg.validate(spec)?;
    let grid = cfg.grid_blocks as usize;
    let threads = worker_threads.max(1).min(grid);

    if threads <= 1 || grid < 4 {
        let mut outputs = Vec::with_capacity(grid);
        let mut cost = KernelCost::ZERO;
        for b in 0..grid {
            let mut ctx = BlockCtx::new(spec, cfg, b as u32);
            outputs.push(f(&mut ctx)?);
            cost += ctx.cost;
        }
        return Ok((outputs, cost));
    }

    // Contiguous partition of the grid over worker spans; each span fills
    // an independent vector, concatenated in span order afterwards, so the
    // result is identical to the sequential path for any thread count.
    let per = grid.div_ceil(threads);
    let spans: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * per, ((t + 1) * per).min(grid)))
        .filter(|&(start, end)| start < end)
        .collect();
    let run_span = |(start, end): (usize, usize)| -> SimGpuResult<(Vec<R>, KernelCost)> {
        let mut out = Vec::with_capacity(end - start);
        let mut cost = KernelCost::ZERO;
        for b in start..end {
            let mut ctx = BlockCtx::new(spec, cfg, b as u32);
            out.push(f(&mut ctx)?);
            cost += ctx.cost;
        }
        Ok((out, cost))
    };

    let results: Vec<SimGpuResult<(Vec<R>, KernelCost)>> = match crate::pool::exec_backend() {
        crate::pool::ExecBackend::Pool => {
            crate::pool::run_indexed(spans.len(), |t| run_span(spans[t]))
        }
        crate::pool::ExecBackend::Spawn => std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .map(|&span| s.spawn(move || run_span(span)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kernel worker panicked"))
                .collect()
        }),
    };

    let mut outputs = Vec::with_capacity(grid);
    let mut cost = KernelCost::ZERO;
    for r in results {
        let (out, c) = r?;
        outputs.extend(out);
        cost += c;
    }
    Ok((outputs, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::gt200()
    }

    #[test]
    fn launch_config_builders() {
        let c = LaunchConfig::for_items(1000, 100, 128)
            .with_shared_bytes(1024)
            .with_regs_per_thread(24);
        assert_eq!(c.grid_blocks, 10);
        assert_eq!(c.block_threads, 128);
        assert_eq!(c.shared_bytes, 1024);
        assert_eq!(c.regs_per_thread, 24);
        assert!(c.validate(&spec()).is_ok());
    }

    #[test]
    fn validate_rejects_oversized_blocks() {
        let c = LaunchConfig::grid(1, 1024);
        assert!(matches!(
            c.validate(&spec()),
            Err(SimGpuError::InvalidLaunch(_))
        ));
        let c = LaunchConfig::grid(4, 64).with_shared_bytes(64 * 1024);
        assert!(c.validate(&spec()).is_err());
    }

    #[test]
    fn item_range_partitions_exactly() {
        let s = spec();
        let cfg = LaunchConfig::grid(7, 32);
        let mut covered = [false; 100];
        for b in 0..7 {
            let ctx = BlockCtx::new(&s, &cfg, b);
            for i in ctx.item_range(100) {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn run_blocks_is_deterministic_and_ordered() {
        let s = spec();
        let cfg = LaunchConfig::grid(37, 64);
        let f = |ctx: &mut BlockCtx| {
            ctx.charge_flops(ctx.block_idx as u64);
            Ok(ctx.block_idx)
        };
        let (seq, cost_seq) = run_blocks(&s, &cfg, 1, &f).unwrap();
        assert_eq!(seq, (0..37).collect::<Vec<_>>());
        assert_eq!(cost_seq.flops, (0..37).sum::<u64>());
        for workers in [2, 8] {
            for backend in [
                crate::pool::ExecBackend::Pool,
                crate::pool::ExecBackend::Spawn,
            ] {
                crate::pool::set_exec_backend(backend);
                let (par, cost_par) = run_blocks(&s, &cfg, workers, &f).unwrap();
                assert_eq!(seq, par, "{workers} workers on {backend:?}");
                assert_eq!(cost_seq, cost_par, "{workers} workers on {backend:?}");
            }
        }
        crate::pool::set_exec_backend(crate::pool::ExecBackend::Pool);
    }

    #[test]
    fn shared_alloc_enforces_declaration() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 32).with_shared_bytes(16);
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        let a: Vec<u32> = ctx.shared_alloc(4).unwrap();
        assert_eq!(a.len(), 4);
        let err = ctx.shared_alloc::<u32>(1).unwrap_err();
        assert!(matches!(err, SimGpuError::SharedMemExceeded { .. }));
    }

    #[test]
    fn block_reduce_computes_and_charges() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 64);
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        let sum = ctx.block_reduce(&[1.0f64, 2.0, 3.0, 4.0], |a, b| a + b);
        assert_eq!(sum, Some(10.0));
        assert_eq!(ctx.cost().flops, 3);
        assert_eq!(ctx.block_reduce::<f64, _>(&[], |a, _| a), None);
    }

    #[test]
    fn warp_sum_charges_coalesced_reads() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 32);
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        let total = ctx.warp_sum_u32(&[5, 6, 7]);
        assert_eq!(total, 18);
        assert_eq!(ctx.cost().bytes_coalesced, 12);
        assert!(ctx.cost().flops >= 3);
    }

    #[test]
    fn kernel_errors_propagate_from_workers() {
        let s = spec();
        let cfg = LaunchConfig::grid(16, 32).with_shared_bytes(4);
        let f = |ctx: &mut BlockCtx| {
            // Every block over-allocates shared memory.
            ctx.shared_alloc::<u64>(2)?;
            Ok(())
        };
        assert!(run_blocks(&s, &cfg, 4, &f).is_err());
    }

    #[test]
    fn shared_memory_bank_conflicts() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 32);
        // Stride 1 (f32): conflict-free — one cycle per access.
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_shared::<f32>(100, 1);
        assert_eq!(ctx.cost().flops, 100);
        // Stride 2: 2-way conflicts.
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_shared::<f32>(100, 2);
        assert_eq!(ctx.cost().flops, 200);
        // Stride 16: fully serialized 16-way conflicts.
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_shared::<f32>(100, 16);
        assert_eq!(ctx.cost().flops, 1600);
        // Odd strides are conflict-free.
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_shared::<f32>(100, 17);
        assert_eq!(ctx.cost().flops, 100);
        // 8-byte elements double the word stride.
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_shared::<f64>(100, 1);
        assert_eq!(ctx.cost().flops, 200);
    }

    #[test]
    fn addressed_charges_agree_with_declared_model_at_the_extremes() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 32);

        // Perfectly sequential addresses: derived traffic equals the
        // declared coalesced charge.
        let mut auto = BlockCtx::new(&s, &cfg, 0);
        let seq: Vec<u64> = (0..256).map(|i| i * 4).collect();
        let summary = auto.charge_addressed::<u32>(&seq);
        let mut declared = BlockCtx::new(&s, &cfg, 0);
        declared.charge_read::<u32>(256);
        assert_eq!(auto.cost().bytes_coalesced, declared.cost().bytes_coalesced);
        assert!((summary.waste_factor() - 1.0).abs() < 1e-12);

        // Full scatter: derived traffic equals the declared uncoalesced
        // charge times the penalty (8x for 4-byte elements on GT200).
        let mut auto = BlockCtx::new(&s, &cfg, 0);
        let scattered: Vec<u64> = (0..256).map(|i| i * 4096).collect();
        auto.charge_addressed::<u32>(&scattered);
        let mut declared = BlockCtx::new(&s, &cfg, 0);
        declared.charge_read_uncoalesced::<u32>(256);
        let declared_effective = declared.cost().effective_bytes(&s);
        assert!(
            (auto.cost().bytes_coalesced as f64 - declared_effective).abs()
                < 1e-9 * declared_effective
        );
    }

    #[test]
    fn charges_accumulate_by_kind() {
        let s = spec();
        let cfg = LaunchConfig::grid(1, 32);
        let mut ctx = BlockCtx::new(&s, &cfg, 0);
        ctx.charge_read::<u32>(10);
        ctx.charge_write::<u64>(5);
        ctx.charge_read_uncoalesced::<u8>(3);
        ctx.charge_write_uncoalesced::<u16>(2);
        ctx.charge_atomics(7);
        let c = ctx.cost();
        assert_eq!(c.bytes_coalesced, 40 + 40);
        assert_eq!(c.bytes_uncoalesced, 3 + 4);
        assert_eq!(c.atomic_ops, 7);
    }
}
