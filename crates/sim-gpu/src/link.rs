//! PCI-e link model.
//!
//! The paper's cluster connects each Tesla S1070 (4 GPUs) to its host
//! through generation-1 PCI-e; GPUs contend for host links, and the cost of
//! streaming chunks across PCI-e is one of the two communication costs the
//! GPMR pipeline is designed around (the other being the network). A link
//! has one timeline per direction, so an H2D copy can overlap a D2H copy
//! but two H2D copies serialize — matching full-duplex DMA hardware.

use std::sync::Arc;

use std::sync::Mutex;

use crate::time::{Reservation, SimDuration, SimTime, Timeline};

/// Transfer direction across the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Host memory to device memory (upload).
    HostToDevice,
    /// Device memory to host memory (download).
    DeviceToHost,
}

/// A full-duplex PCI-e link with per-direction bandwidth and a fixed
/// initiation latency per transfer.
#[derive(Debug)]
pub struct PcieLink {
    /// Effective bandwidth per direction in bytes/second.
    pub bandwidth: f64,
    /// Fixed cost to initiate a DMA transfer, in seconds.
    pub latency_s: f64,
    h2d: Timeline,
    d2h: Timeline,
}

impl PcieLink {
    /// Create a link with the given per-direction bandwidth and latency.
    pub fn new(bandwidth: f64, latency_s: f64) -> Self {
        PcieLink {
            bandwidth,
            latency_s,
            h2d: Timeline::new(),
            d2h: Timeline::new(),
        }
    }

    /// Generation-1 x16 link as in the paper's cluster: ~3.2 GB/s
    /// effective, ~10 microseconds to initiate a transfer.
    pub fn gen1_x16() -> Self {
        Self::new(3.2e9, 10.0e-6)
    }

    /// Generation-2 x16 link (for ablations): ~6.2 GB/s effective.
    pub fn gen2_x16() -> Self {
        Self::new(6.2e9, 8.0e-6)
    }

    /// Scale bandwidth down by `s`, keeping the initiation latency (see
    /// [`crate::GpuSpec::scaled`] for the workload-scaling rationale).
    pub fn scaled(mut self, s: f64) -> Self {
        self.bandwidth /= s.max(1.0);
        self
    }

    /// Reserve the link for a `bytes`-sized transfer in `dir`, starting no
    /// earlier than `at`.
    pub fn transfer(&mut self, dir: Direction, at: SimTime, bytes: u64) -> Reservation {
        let dur = SimDuration::from_secs(self.latency_s + bytes as f64 / self.bandwidth);
        match dir {
            Direction::HostToDevice => self.h2d.reserve(at, dur),
            Direction::DeviceToHost => self.d2h.reserve(at, dur),
        }
    }

    /// Instant after which direction `dir` is idle.
    pub fn free_at(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::HostToDevice => self.h2d.free_at(),
            Direction::DeviceToHost => self.d2h.free_at(),
        }
    }

    /// Total busy time across both directions.
    pub fn busy_time(&self) -> SimDuration {
        self.h2d.busy_time() + self.d2h.busy_time()
    }

    /// Reset both directions to idle, clearing statistics.
    pub fn reset(&mut self) {
        self.h2d.reset();
        self.d2h.reset();
    }
}

/// A PCI-e link shareable between devices (the S1070 topology pairs two
/// GPUs per host link). Cheap to clone.
#[derive(Clone, Debug)]
pub struct SharedLink(Arc<Mutex<PcieLink>>);

impl SharedLink {
    /// Wrap a link for sharing.
    pub fn new(link: PcieLink) -> Self {
        SharedLink(Arc::new(Mutex::new(link)))
    }

    /// Reserve a transfer; see [`PcieLink::transfer`].
    pub fn transfer(&self, dir: Direction, at: SimTime, bytes: u64) -> Reservation {
        self.0.lock().unwrap().transfer(dir, at, bytes)
    }

    /// See [`PcieLink::free_at`].
    pub fn free_at(&self, dir: Direction) -> SimTime {
        self.0.lock().unwrap().free_at(dir)
    }

    /// See [`PcieLink::busy_time`].
    pub fn busy_time(&self) -> SimDuration {
        self.0.lock().unwrap().busy_time()
    }

    /// See [`PcieLink::reset`].
    pub fn reset(&self) {
        self.0.lock().unwrap().reset()
    }
}

impl Default for SharedLink {
    fn default() -> Self {
        SharedLink::new(PcieLink::gen1_x16())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bw() {
        let mut link = PcieLink::new(1e9, 1e-6);
        let r = link.transfer(Direction::HostToDevice, SimTime::ZERO, 1_000_000);
        assert!((r.duration().as_secs() - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::gen1_x16();
        let up = link.transfer(Direction::HostToDevice, SimTime::ZERO, 1 << 30);
        let down = link.transfer(Direction::DeviceToHost, SimTime::ZERO, 1 << 30);
        // Both start immediately: full duplex.
        assert_eq!(up.start, SimTime::ZERO);
        assert_eq!(down.start, SimTime::ZERO);
    }

    #[test]
    fn same_direction_serializes() {
        let mut link = PcieLink::gen1_x16();
        let a = link.transfer(Direction::HostToDevice, SimTime::ZERO, 1 << 20);
        let b = link.transfer(Direction::HostToDevice, SimTime::ZERO, 1 << 20);
        assert_eq!(b.start, a.end);
        assert_eq!(link.free_at(Direction::HostToDevice), b.end);
    }

    #[test]
    fn shared_link_contention_between_devices() {
        let shared = SharedLink::new(PcieLink::gen1_x16());
        let other = shared.clone();
        let a = shared.transfer(Direction::HostToDevice, SimTime::ZERO, 1 << 25);
        let b = other.transfer(Direction::HostToDevice, SimTime::ZERO, 1 << 25);
        assert_eq!(b.start, a.end);
        assert!(shared.busy_time().as_secs() > 0.0);
        shared.reset();
        assert_eq!(other.busy_time(), SimDuration::ZERO);
    }
}
