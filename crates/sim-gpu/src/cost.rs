//! The kernel cost model.
//!
//! Kernels account for the work they do through [`KernelCost`] counters
//! (recorded via [`BlockCtx`](crate::kernel::BlockCtx) helpers). The device
//! converts an aggregate cost into simulated time with a roofline model:
//! a kernel's execution time is the larger of its compute time and its
//! memory time, plus atomic serialization, plus the fixed launch overhead —
//! the standard first-order model for throughput-oriented processors.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::spec::GpuSpec;
use crate::time::SimDuration;

/// Work counters accumulated by a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCost {
    /// Arithmetic operations (one FLOP or one integer op each).
    pub flops: u64,
    /// Bytes moved to/from global memory by coalesced (full-width)
    /// transactions.
    pub bytes_coalesced: u64,
    /// Bytes moved by uncoalesced accesses; each byte is charged
    /// [`GpuSpec::uncoalesced_penalty`] times.
    pub bytes_uncoalesced: u64,
    /// Global-memory atomic operations (assumed contended; serialized at
    /// [`GpuSpec::atomic_throughput`]).
    pub atomic_ops: u64,
}

impl KernelCost {
    /// A zero cost.
    pub const ZERO: KernelCost = KernelCost {
        flops: 0,
        bytes_coalesced: 0,
        bytes_uncoalesced: 0,
        atomic_ops: 0,
    };

    /// Total effective bytes after applying the uncoalesced penalty.
    pub fn effective_bytes(&self, spec: &GpuSpec) -> f64 {
        self.bytes_coalesced as f64 + self.bytes_uncoalesced as f64 * spec.uncoalesced_penalty
    }

    /// True if no work was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

impl Add for KernelCost {
    type Output = KernelCost;
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + rhs.flops,
            bytes_coalesced: self.bytes_coalesced + rhs.bytes_coalesced,
            bytes_uncoalesced: self.bytes_uncoalesced + rhs.bytes_uncoalesced,
            atomic_ops: self.atomic_ops + rhs.atomic_ops,
        }
    }
}

impl AddAssign for KernelCost {
    fn add_assign(&mut self, rhs: KernelCost) {
        *self = *self + rhs;
    }
}

impl Sum for KernelCost {
    fn sum<I: Iterator<Item = KernelCost>>(iter: I) -> Self {
        iter.fold(KernelCost::ZERO, |a, b| a + b)
    }
}

/// Convert an aggregate kernel cost into execution time on `spec`.
///
/// `occupancy` in `(0, 1]` scales how well the kernel hides latency: low
/// occupancy cannot saturate the memory system or the ALUs. The scaling is
/// soft — half occupancy is usually enough to reach most of peak — modelled
/// as `eff = clamp(2 * occupancy, 0.25, 1.0)`.
pub fn kernel_time(spec: &GpuSpec, occupancy: f64, cost: &KernelCost) -> SimDuration {
    let eff = (2.0 * occupancy).clamp(0.25, 1.0);
    let compute_s = cost.flops as f64 / (spec.peak_flops() * eff);
    let memory_s = cost.effective_bytes(spec) / (spec.mem_bandwidth * eff);
    let atomics_s = cost.atomic_ops as f64 / spec.atomic_throughput;
    SimDuration::from_secs(spec.kernel_launch_overhead_s + compute_s.max(memory_s) + atomics_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::gt200()
    }

    #[test]
    fn zero_cost_is_launch_overhead_only() {
        let t = kernel_time(&spec(), 1.0, &KernelCost::ZERO);
        assert!((t.as_secs() - spec().kernel_launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn roofline_takes_max_of_compute_and_memory() {
        let s = spec();
        // Memory-bound: 1 GB coalesced, negligible flops.
        let mem_bound = KernelCost {
            bytes_coalesced: 1 << 30,
            ..KernelCost::ZERO
        };
        let t_mem = kernel_time(&s, 1.0, &mem_bound);
        let expect = (1u64 << 30) as f64 / s.mem_bandwidth + s.kernel_launch_overhead_s;
        assert!((t_mem.as_secs() - expect).abs() / expect < 1e-9);

        // Compute-bound: many flops, few bytes.
        let cpu_bound = KernelCost {
            flops: 1 << 34,
            bytes_coalesced: 1 << 10,
            ..KernelCost::ZERO
        };
        let t_cpu = kernel_time(&s, 1.0, &cpu_bound);
        let expect = (1u64 << 34) as f64 / s.peak_flops() + s.kernel_launch_overhead_s;
        assert!((t_cpu.as_secs() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn uncoalesced_bytes_cost_more() {
        let s = spec();
        let coalesced = KernelCost {
            bytes_coalesced: 1 << 26,
            ..KernelCost::ZERO
        };
        let uncoalesced = KernelCost {
            bytes_uncoalesced: 1 << 26,
            ..KernelCost::ZERO
        };
        let t_c = kernel_time(&s, 1.0, &coalesced).as_secs();
        let t_u = kernel_time(&s, 1.0, &uncoalesced).as_secs();
        assert!(t_u > t_c * 4.0, "penalty should dominate: {t_u} vs {t_c}");
    }

    #[test]
    fn low_occupancy_slows_kernels() {
        let s = spec();
        let cost = KernelCost {
            bytes_coalesced: 1 << 28,
            ..KernelCost::ZERO
        };
        let full = kernel_time(&s, 1.0, &cost).as_secs();
        let low = kernel_time(&s, 0.1, &cost).as_secs();
        assert!(low > full * 2.0);
        // Occupancy >= 0.5 is already enough for full efficiency.
        let half = kernel_time(&s, 0.5, &cost).as_secs();
        assert!((half - full).abs() < 1e-12);
    }

    #[test]
    fn atomics_add_serialized_time() {
        let s = spec();
        let cost = KernelCost {
            atomic_ops: 1 << 20,
            ..KernelCost::ZERO
        };
        let t = kernel_time(&s, 1.0, &cost).as_secs();
        let expect = (1u64 << 20) as f64 / s.atomic_throughput + s.kernel_launch_overhead_s;
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn cost_sums() {
        let a = KernelCost {
            flops: 1,
            bytes_coalesced: 2,
            bytes_uncoalesced: 3,
            atomic_ops: 4,
        };
        let total: KernelCost = [a, a, a].into_iter().sum();
        assert_eq!(total.flops, 3);
        assert_eq!(total.bytes_coalesced, 6);
        assert_eq!(total.bytes_uncoalesced, 9);
        assert_eq!(total.atomic_ops, 12);
        assert!(!total.is_zero());
        assert!(KernelCost::ZERO.is_zero());
    }
}
