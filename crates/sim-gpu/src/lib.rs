//! # gpmr-sim-gpu — a deterministic GPU device simulator
//!
//! Substrate for the GPMR reproduction (Stuart & Owens, *Multi-GPU
//! MapReduce on GPU Clusters*, IPDPS 2011). The paper's library runs on
//! CUDA hardware; this crate provides the equivalent device abstraction in
//! pure Rust:
//!
//! * [`GpuSpec`] — hardware presets (the paper's GT200/Tesla S1070, plus a
//!   Fermi-class device for ablations);
//! * [`DeviceMemory`]/[`DeviceBuffer`] — capacity-enforced global memory
//!   (chunking and out-of-core behaviour depend on real OOM errors);
//! * [`LaunchConfig`]/[`BlockCtx`] — kernels written at block granularity,
//!   executed for real on host threads, charging a [`KernelCost`];
//! * a roofline timing model ([`kernel_time`], [`occupancy()`]) converting
//!   costs to simulated time;
//! * [`Timeline`]s for the compute engine and [`PcieLink`]s, so callers can
//!   express stream-style overlap of copies and kernels.
//!
//! Computation is bit-exact and testable; *time* is simulated. See the
//! repository `DESIGN.md` for the calibration used to reproduce the
//! paper's figures.

#![warn(missing_docs)]

pub mod access;
pub mod cost;
pub mod device;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod link;
pub mod memory;
pub mod occupancy;
pub mod pool;
pub mod spec;
pub mod stream;
pub mod time;

pub use access::{coalesce_block, coalesce_warp, CoalescingSummary};
pub use cost::{kernel_time, KernelCost};
pub use device::{Gpu, GpuStats};
pub use error::{SimGpuError, SimGpuResult};
pub use fault::{FaultEvent, FaultPlan, FaultPlanParseError, TransferOutcome};
pub use kernel::{BlockCtx, Launch, LaunchConfig};
pub use link::{Direction, PcieLink, SharedLink};
pub use memory::{DeviceBuffer, DeviceMemory};
pub use occupancy::{occupancy, Occupancy};
pub use pool::{exec_backend, run_indexed, set_exec_backend, worker_threads, ExecBackend};
pub use spec::GpuSpec;
pub use stream::Stream;
pub use time::{Reservation, SimDuration, SimTime, Timeline};
