//! The simulated GPU device.
//!
//! A [`Gpu`] ties together a hardware spec, a capacity-enforced memory
//! allocator, a compute timeline, and a (possibly shared) PCI-e link.
//! All operations are *timed*: they take an earliest-start instant and
//! return when they finish on the simulated clock, so a caller (the GPMR
//! engine) can express overlap — e.g. uploading the next chunk while the
//! current map kernel runs — exactly as CUDA streams would.

use crate::cost::{kernel_time, KernelCost};
use crate::error::SimGpuResult;
use crate::kernel::{run_blocks, BlockCtx, Launch, LaunchConfig};
use crate::link::{Direction, SharedLink};
use crate::memory::{DeviceBuffer, DeviceMemory};
use crate::occupancy::occupancy;
use crate::spec::GpuSpec;
use crate::time::{Reservation, SimDuration, SimTime, Timeline};
use gpmr_telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Cached telemetry handles for one device (boxed so an uninstrumented
/// `Gpu` pays only a pointer-sized `None`).
#[derive(Debug)]
struct GpuTelemetry {
    tel: Telemetry,
    track: u32,
    kernels: Counter,
    h2d_bytes: Counter,
    d2h_bytes: Counter,
    occupancy: Histogram,
    mem_peak: Gauge,
}

impl GpuTelemetry {
    fn new(tel: &Telemetry, rank: u32) -> Self {
        GpuTelemetry {
            tel: tel.clone(),
            track: rank,
            kernels: tel.counter(&format!("gpu.rank{rank}.kernels")),
            h2d_bytes: tel.counter(&format!("gpu.rank{rank}.h2d_bytes")),
            d2h_bytes: tel.counter(&format!("gpu.rank{rank}.d2h_bytes")),
            occupancy: tel.histogram(
                &format!("gpu.rank{rank}.occupancy"),
                &[0.25, 0.5, 0.75, 0.9, 1.0],
            ),
            mem_peak: tel.gauge(&format!("gpu.rank{rank}.mem_peak_bytes")),
        }
    }

    fn kernel(&self, start: SimTime, occ: f64, mem_peak: u64) {
        self.kernels.inc();
        self.occupancy.observe(occ);
        self.mem_peak.set_max(mem_peak as f64);
        self.tel
            .sample(self.track, "gpu.occupancy", start.as_secs(), occ);
    }
}

/// Cumulative activity counters for one device.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Bytes uploaded host-to-device.
    pub h2d_bytes: u64,
    /// Bytes downloaded device-to-host.
    pub d2h_bytes: u64,
}

/// One simulated GPU.
pub struct Gpu {
    /// Hardware description.
    pub spec: GpuSpec,
    /// Global-memory allocator for this device.
    pub mem: DeviceMemory,
    compute: Timeline,
    copy_engine: Timeline,
    link: SharedLink,
    stats: GpuStats,
    telem: Option<Box<GpuTelemetry>>,
    /// Host worker threads used to execute kernel blocks. Defaults to
    /// [`crate::pool::worker_threads`] (`GPMR_WORKER_THREADS`, else the
    /// machine's available parallelism). Outputs and simulated times do
    /// not depend on this value.
    pub worker_threads: usize,
}

impl Gpu {
    /// A device with a private PCI-e gen-1 link.
    pub fn new(spec: GpuSpec) -> Self {
        Self::with_link(spec, SharedLink::default())
    }

    /// A device attached to an existing (possibly shared) link.
    pub fn with_link(spec: GpuSpec, link: SharedLink) -> Self {
        let mem = DeviceMemory::new(spec.mem_capacity);
        Gpu {
            spec,
            mem,
            compute: Timeline::new(),
            copy_engine: Timeline::new(),
            link,
            stats: GpuStats::default(),
            telem: None,
            worker_threads: crate::pool::worker_threads(),
        }
    }

    /// Attach telemetry: kernel launches, occupancy, transferred bytes, and
    /// the memory high-water mark are reported as `gpu.rank{rank}.*`
    /// metrics and occupancy samples on track `rank`. Attaching a disabled
    /// handle detaches (restoring the zero-overhead path).
    pub fn attach_telemetry(&mut self, tel: &Telemetry, rank: u32) {
        self.telem = tel
            .is_enabled()
            .then(|| Box::new(GpuTelemetry::new(tel, rank)));
    }

    /// Launch an infallible kernel: run `f` once per block (in parallel on
    /// host threads, deterministically), charge its aggregate cost on the
    /// compute timeline starting no earlier than `at`, and return per-block
    /// outputs with the reservation window.
    pub fn launch<R, F>(
        &mut self,
        at: SimTime,
        cfg: &LaunchConfig,
        f: F,
    ) -> SimGpuResult<(Launch<R>, Reservation)>
    where
        R: Send,
        F: Fn(&mut BlockCtx) -> R + Sync,
    {
        self.try_launch(at, cfg, |ctx| Ok(f(ctx)))
    }

    /// Launch a kernel whose blocks may fail (e.g. shared-memory
    /// over-allocation). The first error aborts the launch.
    pub fn try_launch<R, F>(
        &mut self,
        at: SimTime,
        cfg: &LaunchConfig,
        f: F,
    ) -> SimGpuResult<(Launch<R>, Reservation)>
    where
        R: Send,
        F: Fn(&mut BlockCtx) -> SimGpuResult<R> + Sync,
    {
        let (outputs, cost) = run_blocks(&self.spec, cfg, self.worker_threads, &f)?;
        let occ = occupancy(&self.spec, cfg);
        let dur = kernel_time(&self.spec, occ.fraction, &cost);
        let res = self.compute.reserve(at, dur);
        self.stats.kernels += 1;
        if let Some(t) = &self.telem {
            t.kernel(res.start, occ.fraction, self.mem.peak());
        }
        Ok((
            Launch {
                outputs,
                cost,
                occupancy: occ.fraction,
            },
            res,
        ))
    }

    /// Charge compute time directly (for modelled device work that is not
    /// expressed as an explicit kernel, e.g. a library sort whose cost was
    /// computed analytically).
    pub fn charge_compute(&mut self, at: SimTime, cost: &KernelCost, occ: f64) -> Reservation {
        let dur = kernel_time(&self.spec, occ, cost);
        self.stats.kernels += 1;
        let res = self.compute.reserve(at, dur);
        if let Some(t) = &self.telem {
            t.kernel(res.start, occ, self.mem.peak());
        }
        res
    }

    /// Reserve a host-to-device transfer of `bytes` on the PCI-e link.
    ///
    /// The transfer also occupies this device's H2D copy-engine timeline:
    /// uploads issued to one device serialize on its copy engine even when
    /// the PCI-e link itself is idle, exactly like queueing `cudaMemcpyAsync`
    /// calls on a single copy stream. The returned reservation reflects
    /// both constraints.
    pub fn h2d(&mut self, at: SimTime, bytes: u64) -> Reservation {
        self.stats.h2d_bytes += bytes;
        if let Some(t) = &self.telem {
            t.h2d_bytes.add(bytes);
        }
        // The copy engine must be free before the link transfer can start.
        let engine_free = self.copy_engine.free_at();
        let res = self
            .link
            .transfer(Direction::HostToDevice, at.max(engine_free), bytes);
        self.copy_engine.reserve(res.start, res.duration());
        res
    }

    /// Queue a host-to-device transfer on the copy engine at `issue`, but
    /// no earlier than `gate` (typically the instant the destination
    /// staging buffer frees up). This is the k-deep upload pipeline's
    /// primitive: the engine issues uploads for chunks N+1..N+k while
    /// chunk N's map runs, gating each on its staging slot.
    pub fn h2d_gated(&mut self, issue: SimTime, gate: SimTime, bytes: u64) -> Reservation {
        self.h2d(issue.max(gate), bytes)
    }

    /// Reserve a device-to-host transfer of `bytes` on the PCI-e link.
    pub fn d2h(&mut self, at: SimTime, bytes: u64) -> Reservation {
        self.stats.d2h_bytes += bytes;
        if let Some(t) = &self.telem {
            t.d2h_bytes.add(bytes);
        }
        self.link.transfer(Direction::DeviceToHost, at, bytes)
    }

    /// Allocate a zeroed device buffer.
    pub fn alloc<T: Clone + Default>(&self, len: usize) -> SimGpuResult<DeviceBuffer<T>> {
        self.mem.alloc(len)
    }

    /// Allocate a device buffer holding a copy of `src` *without* charging
    /// transfer time (callers pair this with [`Gpu::h2d`] when the copy
    /// should be timed).
    pub fn alloc_from_slice<T: Clone>(&self, src: &[T]) -> SimGpuResult<DeviceBuffer<T>> {
        self.mem.alloc_from_slice(src)
    }

    /// Upload `src` to a new device buffer, charging PCI-e time. Returns
    /// the buffer and the transfer reservation.
    pub fn upload<T: Clone>(
        &mut self,
        at: SimTime,
        src: &[T],
    ) -> SimGpuResult<(DeviceBuffer<T>, Reservation)> {
        let buf = self.mem.alloc_from_slice(src)?;
        let res = self.h2d(at, buf.size_bytes());
        Ok((buf, res))
    }

    /// Download a device buffer to host memory, charging PCI-e time and
    /// freeing the device allocation. Returns the data and the transfer
    /// reservation.
    pub fn download<T>(&mut self, at: SimTime, buf: DeviceBuffer<T>) -> (Vec<T>, Reservation) {
        let bytes = buf.size_bytes();
        let res = self.d2h(at, bytes);
        (buf.into_vec(), res)
    }

    /// Note a modeled working set resident in device memory (raises the
    /// allocator's high-water mark without charging capacity; see
    /// [`DeviceMemory::note_resident`]).
    pub fn note_resident(&mut self, bytes: u64) {
        self.mem.note_resident(bytes);
    }

    /// Publish the memory high-water mark to the `mem_peak_bytes` gauge.
    /// Kernel launches update the gauge as they go; this teardown flush
    /// catches residency noted after the last launch. No-op when
    /// uninstrumented.
    pub fn flush_telemetry(&self) {
        if let Some(t) = &self.telem {
            t.mem_peak.set_max(self.mem.peak() as f64);
        }
    }

    /// Instant after which the compute engine is idle.
    pub fn compute_free_at(&self) -> SimTime {
        self.compute.free_at()
    }

    /// Total time the compute engine has been busy.
    pub fn compute_busy(&self) -> SimDuration {
        self.compute.busy_time()
    }

    /// Instant after which the H2D copy engine is idle.
    pub fn copy_free_at(&self) -> SimTime {
        self.copy_engine.free_at()
    }

    /// Total time the H2D copy engine has been busy.
    pub fn copy_busy(&self) -> SimDuration {
        self.copy_engine.busy_time()
    }

    /// The device's PCI-e link handle.
    pub fn link(&self) -> &SharedLink {
        &self.link
    }

    /// Activity counters.
    pub fn stats(&self) -> GpuStats {
        self.stats
    }

    /// Reset the clock state (compute timeline and link) without touching
    /// allocations. Used between jobs on a persistent device.
    pub fn reset_clock(&mut self) {
        self.compute.reset();
        self.copy_engine.reset();
        self.link.reset();
        self.stats = GpuStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::gt200())
    }

    #[test]
    fn launch_times_accumulate_on_compute_timeline() {
        let mut g = gpu();
        let cfg = LaunchConfig::grid(30, 256);
        let (l1, r1) = g
            .launch(SimTime::ZERO, &cfg, |ctx| {
                ctx.charge_flops(1_000_000);
                ctx.block_idx
            })
            .unwrap();
        assert_eq!(l1.outputs.len(), 30);
        assert!(r1.end > r1.start || r1.duration().as_secs() > 0.0);
        let (_, r2) = g.launch(SimTime::ZERO, &cfg, |_| ()).unwrap();
        // Second kernel waits for the first even though requested at t=0.
        assert_eq!(r2.start, r1.end);
        assert_eq!(g.stats().kernels, 2);
        assert_eq!(g.compute_free_at(), r2.end);
    }

    #[test]
    fn upload_download_round_trip_times_and_data() {
        let mut g = gpu();
        let data: Vec<u32> = (0..1024).collect();
        let (buf, up) = g.upload(SimTime::ZERO, &data).unwrap();
        assert_eq!(g.mem.used(), 4096);
        assert!(up.duration().as_secs() > 0.0);
        let (back, down) = g.download(up.end, buf);
        assert_eq!(back, data);
        assert_eq!(g.mem.used(), 0);
        assert!(down.start >= up.end);
        assert_eq!(g.stats().h2d_bytes, 4096);
        assert_eq!(g.stats().d2h_bytes, 4096);
    }

    #[test]
    fn kernel_can_produce_real_results() {
        let mut g = gpu();
        let input: Vec<u64> = (1..=1000).collect();
        let cfg = LaunchConfig::for_items(input.len(), 100, 128);
        let (launch, _) = g
            .launch(SimTime::ZERO, &cfg, |ctx| {
                let range = ctx.item_range(input.len());
                ctx.charge_read::<u64>(range.len());
                input[range].iter().sum::<u64>()
            })
            .unwrap();
        let total: u64 = launch.outputs.iter().sum();
        assert_eq!(total, 500500);
        assert_eq!(launch.cost.bytes_coalesced, 8000);
    }

    #[test]
    fn charge_compute_reserves_time() {
        let mut g = gpu();
        let cost = KernelCost {
            bytes_coalesced: 1 << 27,
            ..KernelCost::ZERO
        };
        let r = g.charge_compute(SimTime::from_secs(1.0), &cost, 1.0);
        assert_eq!(r.start.as_secs(), 1.0);
        assert!(r.duration().as_secs() > 1e-4);
    }

    #[test]
    fn shared_link_causes_cross_device_contention() {
        let link = SharedLink::default();
        let mut a = Gpu::with_link(GpuSpec::gt200(), link.clone());
        let mut b = Gpu::with_link(GpuSpec::gt200(), link);
        let ra = a.h2d(SimTime::ZERO, 1 << 26);
        let rb = b.h2d(SimTime::ZERO, 1 << 26);
        assert_eq!(rb.start, ra.end);
    }

    #[test]
    fn attached_telemetry_reports_kernels_and_bytes() {
        let tel = Telemetry::enabled();
        let mut g = gpu();
        g.attach_telemetry(&tel, 3);
        let cfg = LaunchConfig::grid(30, 256);
        g.launch(SimTime::ZERO, &cfg, |ctx| ctx.charge_flops(1000))
            .unwrap();
        let _buf = g.alloc::<u8>(2048).unwrap();
        g.h2d(SimTime::ZERO, 4096);
        g.d2h(SimTime::ZERO, 128);
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counter("gpu.rank3.kernels"), 1);
        assert_eq!(snap.metrics.counter("gpu.rank3.h2d_bytes"), 4096);
        assert_eq!(snap.metrics.counter("gpu.rank3.d2h_bytes"), 128);
        assert!(snap.metrics.gauge("gpu.rank3.mem_peak_bytes") >= 0.0);
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].series, "gpu.occupancy");
        assert_eq!(snap.samples[0].track, 3);
        // A disabled handle detaches.
        g.attach_telemetry(&Telemetry::disabled(), 3);
        g.h2d(SimTime::ZERO, 4096);
        assert_eq!(tel.snapshot().metrics.counter("gpu.rank3.h2d_bytes"), 4096);
    }

    #[test]
    fn teardown_flush_reports_exact_memory_peak() {
        let tel = Telemetry::enabled();
        let mut g = gpu();
        g.attach_telemetry(&tel, 0);
        // Known allocation pattern: peak 256 + 1024 = 1280, then shrink...
        let a = g.alloc::<u8>(256).unwrap();
        let b = g.alloc::<u8>(1024).unwrap();
        drop(b);
        let _c = g.alloc::<u8>(512).unwrap();
        drop(a);
        // ...then a modeled working set on top of the 512 still allocated.
        g.note_resident(4096);
        g.flush_telemetry();
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.gauge("gpu.rank0.mem_peak_bytes"), 4608.0);
    }

    #[test]
    fn reset_clock_clears_time_but_not_memory() {
        let mut g = gpu();
        let _buf = g.alloc::<u8>(128).unwrap();
        g.h2d(SimTime::ZERO, 1 << 20);
        g.reset_clock();
        assert_eq!(g.compute_free_at(), SimTime::ZERO);
        assert_eq!(g.copy_free_at(), SimTime::ZERO);
        assert_eq!(g.stats().h2d_bytes, 0);
        assert_eq!(g.mem.used(), 128);
    }

    #[test]
    fn uploads_serialize_on_the_copy_engine() {
        let mut g = gpu();
        let r1 = g.h2d(SimTime::ZERO, 1 << 26);
        // Second upload issued at t=0 queues behind the first on the copy
        // engine (and on the link).
        let r2 = g.h2d(SimTime::ZERO, 1 << 26);
        assert_eq!(r2.start, r1.end);
        assert_eq!(g.copy_free_at(), r2.end);
        assert_eq!(
            g.copy_busy().as_secs(),
            r1.duration().as_secs() + r2.duration().as_secs()
        );
    }

    #[test]
    fn gated_upload_waits_for_the_later_of_issue_and_gate() {
        let mut g = gpu();
        let gate = SimTime::from_secs(2.0);
        let r = g.h2d_gated(SimTime::from_secs(1.0), gate, 1 << 20);
        assert_eq!(r.start, gate);
        // With the gate in the past, the issue time wins.
        let r2 = g.h2d_gated(SimTime::from_secs(5.0), SimTime::ZERO, 1 << 20);
        assert_eq!(r2.start, SimTime::from_secs(5.0));
    }

    #[test]
    fn copy_engine_and_d2h_are_independent() {
        // Downloads ride the other PCI-e direction and do not occupy the
        // H2D copy engine.
        let mut g = gpu();
        let up = g.h2d(SimTime::ZERO, 1 << 26);
        let down = g.d2h(SimTime::ZERO, 1 << 26);
        assert_eq!(down.start, SimTime::ZERO);
        assert_eq!(g.copy_free_at(), up.end);
    }
}
