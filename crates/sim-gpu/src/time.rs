//! Simulated-time primitives.
//!
//! The simulator separates *what* is computed (real data, computed on host
//! threads) from *when* it finishes (simulated seconds, derived from the
//! cost model). `SimTime` is an absolute instant on the simulated clock and
//! `SimDuration` a span between instants. Resources (GPU compute, PCI-e
//! directions, NICs) are modelled as [`Timeline`]s that serialize
//! reservations, which is how overlap and contention emerge.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in seconds since job start.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Always non-negative.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Negative inputs are clamped to zero.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s.max(0.0))
    }

    /// The instant as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// An empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Negative inputs are clamped to zero.
    pub fn from_secs(s: f64) -> Self {
        SimDuration(s.max(0.0))
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// The span as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span as fractional milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 / rhs).max(0.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 * 1e3)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 * 1e3)
    }
}

/// The window of simulated time granted by a [`Timeline::reserve`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reservation {
    /// When the resource actually started serving the request.
    pub start: SimTime,
    /// When the request completes and the resource frees up.
    pub end: SimTime,
}

impl Reservation {
    /// The service duration (`end - start`).
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A serially-shared resource: one request at a time, FIFO by request order.
///
/// A `Timeline` models a GPU's compute engine, one direction of a PCI-e
/// link, or a NIC. Callers ask to start no earlier than `earliest`; the
/// timeline grants the later of that and its own availability, then marks
/// itself busy for the duration. Total busy time is accumulated for
/// utilization statistics.
///
/// ```
/// use gpmr_sim_gpu::{SimDuration, SimTime, Timeline};
///
/// let mut engine = Timeline::new();
/// let a = engine.reserve(SimTime::ZERO, SimDuration::from_secs(1.0));
/// // A second request at t=0 waits for the first to finish.
/// let b = engine.reserve(SimTime::ZERO, SimDuration::from_secs(0.5));
/// assert_eq!(b.start, a.end);
/// assert_eq!(engine.busy_time().as_secs(), 1.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    free_at: SimTime,
    busy: SimDuration,
}

impl Timeline {
    /// A timeline that is free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `dur` of exclusive service, starting no earlier than
    /// `earliest` and no earlier than the end of any previous reservation.
    pub fn reserve(&mut self, earliest: SimTime, dur: SimDuration) -> Reservation {
        let start = earliest.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        Reservation { start, end }
    }

    /// The instant after which the resource is idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time this resource has spent serving reservations.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Reset to the free-from-zero state, clearing statistics.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a + SimDuration::from_secs(0.5);
        assert!(b > a);
        assert_eq!((b - a).as_secs(), 0.5);
        // saturating subtraction
        assert_eq!((a - b).as_secs(), 0.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs(-3.0).as_secs(), 0.0);
        assert_eq!(SimDuration::from_secs(-1.0).as_secs(), 0.0);
        assert_eq!((SimDuration::from_secs(1.0) * -2.0).as_secs(), 0.0);
    }

    #[test]
    fn timeline_serializes_reservations() {
        let mut tl = Timeline::new();
        let r1 = tl.reserve(SimTime::ZERO, SimDuration::from_secs(1.0));
        assert_eq!(r1.start, SimTime::ZERO);
        assert_eq!(r1.end.as_secs(), 1.0);

        // A request at t=0.2 must wait for the first to finish.
        let r2 = tl.reserve(SimTime::from_secs(0.2), SimDuration::from_secs(0.5));
        assert_eq!(r2.start.as_secs(), 1.0);
        assert_eq!(r2.end.as_secs(), 1.5);

        // A request after the timeline is idle starts immediately.
        let r3 = tl.reserve(SimTime::from_secs(3.0), SimDuration::from_secs(0.25));
        assert_eq!(r3.start.as_secs(), 3.0);
        assert_eq!(tl.busy_time().as_secs(), 1.75);
    }

    #[test]
    fn timeline_reset_clears_state() {
        let mut tl = Timeline::new();
        tl.reserve(SimTime::ZERO, SimDuration::from_secs(2.0));
        tl.reset();
        assert_eq!(tl.free_at(), SimTime::ZERO);
        assert_eq!(tl.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum_and_display() {
        let total: SimDuration = [0.5, 0.25, 0.25]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total.as_secs(), 1.0);
        assert_eq!(format!("{total}"), "1000.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(0.5)), "0.500000s");
    }

    #[test]
    fn reservation_duration() {
        let mut tl = Timeline::new();
        let r = tl.reserve(SimTime::from_secs(1.0), SimDuration::from_secs(0.5));
        assert_eq!(r.duration().as_secs(), 0.5);
    }
}
