//! Error types for the GPU simulator.

use std::fmt;

/// Errors raised by the simulated device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimGpuError {
    /// A device-memory allocation exceeded remaining capacity.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: u64,
        /// Bytes still available on the device.
        available: u64,
    },
    /// A kernel requested more shared memory than its launch configuration
    /// declared.
    SharedMemExceeded {
        /// Bytes requested within the block.
        requested: u32,
        /// Bytes declared in the launch configuration.
        declared: u32,
    },
    /// A launch configuration is impossible on this device (e.g. more
    /// threads per block than the hardware maximum, or a zero dimension).
    InvalidLaunch(String),
}

impl fmt::Display for SimGpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimGpuError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            SimGpuError::SharedMemExceeded {
                requested,
                declared,
            } => write!(
                f,
                "shared memory exceeded: block requested {requested} bytes, launch declared {declared}"
            ),
            SimGpuError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimGpuError {}

/// Convenience result alias for simulator operations.
pub type SimGpuResult<T> = Result<T, SimGpuError>;
