//! Acceptance tests for the performance-diagnosis layer, end to end
//! through the CLI:
//!
//! * `gpmr analyze` on a faulted 8-rank SIO run names the bounding stage
//!   and surfaces at least one finding, and its critical-path stage
//!   attribution reconciles with the makespan within 1%;
//! * `gpmr perf diff` exits non-zero (an `Err` from dispatch, which the
//!   binary maps to exit code 2) on a synthetic 2x regression and zero on
//!   an identical recording.

use gpmr::telemetry::json;
use gpmr_cli::dispatch;
use gpmr_telemetry::baseline::{diff, BaselineSet, Verdict};

fn run(tokens: &[&str]) -> Result<String, gpmr_cli::CliError> {
    dispatch(tokens.iter().copied())
}

const FAULTED_SIO: &[&str] = &[
    "analyze",
    "--benchmark",
    "sio",
    "--gpus",
    "8",
    "--size",
    "200000",
    "--fault-plan",
    "xfail:0->1@0..1*6",
];

#[test]
fn faulted_analyze_names_bounding_stage_and_findings() {
    let out = run(FAULTED_SIO).unwrap();
    assert!(out.contains("bounding stage:"), "{out}");
    // Six forced transfer failures exceed the retry-hotspot threshold, so
    // the report must carry at least one named finding.
    assert!(!out.contains("findings: none"), "{out}");
    assert!(out.contains("TransferRetryHotspot"), "{out}");
    // All 8 ranks appear in the activity breakdown.
    for r in 0..8 {
        assert!(
            out.contains(&format!("rank {r}:")),
            "missing rank {r}:\n{out}"
        );
    }
}

#[test]
fn critical_path_attribution_reconciles_with_makespan() {
    let json_out = run(&[FAULTED_SIO, &["--json"]].concat()).unwrap();
    let v = json::parse(&json_out).expect("analyze --json emits valid JSON");
    let makespan = v.get("makespan_s").and_then(json::Value::as_f64).unwrap();
    assert!(makespan > 0.0);
    let stage_sum: f64 = v
        .get("stages")
        .and_then(json::Value::as_arr)
        .unwrap()
        .iter()
        .map(|s| s.get("seconds").and_then(json::Value::as_f64).unwrap())
        .sum();
    let drift = (stage_sum - makespan).abs() / makespan;
    assert!(
        drift < 0.01,
        "critical-path stage attribution ({stage_sum}s) drifts {:.3}% from \
         the makespan ({makespan}s)",
        drift * 100.0
    );
    assert!(
        !v.get("findings")
            .and_then(json::Value::as_arr)
            .unwrap()
            .is_empty(),
        "{json_out}"
    );
}

#[test]
fn perf_gate_fails_on_regression_and_passes_on_identical() {
    // One real scenario measurement stands in for the committed baseline.
    let sc = gpmr_bench::perf::scenario("sio_4rank").unwrap();
    let (baseline, _) = gpmr_bench::perf::run_scenario(&sc, 4096);

    // Identical re-measurement: PASS.
    let (same, _) = gpmr_bench::perf::run_scenario(&sc, 4096);
    assert_eq!(diff(&baseline, &same, 0.15).verdict, Verdict::Pass);

    // Synthetic 2x makespan regression: FAIL.
    let mut worse = baseline.clone();
    worse.makespan_ns *= 2;
    assert_eq!(diff(&baseline, &worse, 0.15).verdict, Verdict::Fail);

    // And through the CLI: dispatch must return Err (the binary exits 2).
    let dir = std::env::temp_dir().join("gpmr_perf_gate_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base_path = dir.join("base.json");
    let worse_path = dir.join("worse.json");
    let set = |b| BaselineSet {
        scale: 4096,
        tolerance: 0.15,
        baselines: vec![b],
    };
    std::fs::write(&base_path, set(baseline.clone()).to_json()).unwrap();
    std::fs::write(&worse_path, set(worse).to_json()).unwrap();

    let ok = run(&[
        "perf",
        "diff",
        "--baseline",
        base_path.to_str().unwrap(),
        "--against",
        base_path.to_str().unwrap(),
    ])
    .unwrap();
    assert!(ok.contains("verdict: PASS"), "{ok}");

    let err = run(&[
        "perf",
        "diff",
        "--baseline",
        base_path.to_str().unwrap(),
        "--against",
        worse_path.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("FAIL"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
