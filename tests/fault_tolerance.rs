//! Fault-tolerance chaos suite — the headline guarantee of the
//! fault-injection harness, enforced end to end:
//!
//! * any fault plan that leaves at least one GPU alive produces output
//!   **bit-identical** to the fault-free run (data is computed for real;
//!   only simulated time may change);
//! * killing every GPU yields a typed [`EngineError::GpuLost`], never a
//!   panic or a wrong answer;
//! * recovery work (kills, requeues, retries, stalls) is visible in
//!   [`JobTimings`] and in the execution trace;
//! * identical fault seeds reproduce identical plans, traces, and
//!   timings.

use std::sync::Arc;

use gpmr::apps::{text, wo};
use gpmr::core::{run_job, run_job_traced, EngineError, EngineTuning, JobTimings, TraceKind};
use gpmr::prelude::*;
use gpmr::sim_gpu::FaultPlan;
use gpmr::sim_net::TransferFault;
use gpmr_apps::sio::{self, sio_chunks};

const RANKS: u32 = 4;

fn sio_data() -> Vec<u32> {
    sio::generate_integers(80_000, 11)
}

fn cluster_with(plan: Option<FaultPlan>) -> Cluster {
    let mut cluster = Cluster::accelerator(RANKS, GpuSpec::gt200());
    cluster.set_fault_plan(plan);
    cluster
}

/// Run the (integer-exact) SIO job under `plan`.
fn run_sio(plan: Option<FaultPlan>) -> (Vec<KvSet<u32, u32>>, JobTimings) {
    run_sio_on(RANKS, plan)
}

/// The same SIO job on a cluster of `ranks` GPUs (elasticity tests start
/// with spare, not-yet-joined GPUs beyond rank `RANKS`).
fn run_sio_on(ranks: u32, plan: Option<FaultPlan>) -> (Vec<KvSet<u32, u32>>, JobTimings) {
    let data = sio_data();
    let mut cluster = Cluster::accelerator(ranks, GpuSpec::gt200());
    cluster.set_fault_plan(plan);
    let result = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect("job should survive");
    (result.outputs, result.timings)
}

/// Fault-free makespan in seconds, used to aim kills mid-job.
fn fault_free_makespan() -> f64 {
    run_sio(None).1.total.as_secs()
}

#[test]
fn single_mid_job_kill_is_bit_identical() {
    let (base_out, base_t) = run_sio(None);
    let plan = FaultPlan::new().kill(1, base_t.total.as_secs() * 0.3);

    let (out, t) = run_sio(Some(plan));
    assert_eq!(out, base_out, "outputs diverged after a mid-job GPU kill");
    assert_eq!(t.gpus_lost, 1);
    assert!(
        t.chunks_requeued > 0,
        "a mid-job kill must orphan and requeue chunks"
    );
}

#[test]
fn staggered_kills_down_to_one_survivor_preserve_output() {
    let (base_out, base_t) = run_sio(None);
    let horizon = base_t.total.as_secs();
    let plan = FaultPlan::new()
        .kill(1, horizon * 0.25)
        .kill(2, horizon * 0.40)
        .kill(3, horizon * 0.55);

    let (out, t) = run_sio(Some(plan));
    assert_eq!(out, base_out, "outputs diverged with 3 of 4 GPUs killed");
    assert_eq!(t.gpus_lost, 3);
    assert!(t.chunks_requeued > 0);
}

#[test]
fn killing_every_gpu_is_a_typed_error() {
    let mut plan = FaultPlan::new();
    for r in 0..RANKS {
        plan = plan.kill(r, 1e-6);
    }
    let data = sio_data();
    let mut cluster = cluster_with(Some(plan));
    let err = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect_err("no GPU left to run on");
    assert!(
        matches!(err, EngineError::GpuLost { .. }),
        "expected GpuLost, got {err}"
    );
}

#[test]
fn accumulate_mode_survives_a_mid_job_kill() {
    // WO runs in Accumulation mode: the per-GPU accumulation state dies
    // with the device, so every chunk folded into it must be rerun.
    let dict = Arc::new(Dictionary::generate(300, 11));
    let corpus = text::generate_text(&dict, 120_000, 12);
    let expect = wo::cpu_reference(&dict, &corpus);
    let job = WoJob::new(dict.clone(), RANKS);

    let base = run_job(
        &mut cluster_with(None),
        &job,
        text::chunk_text(&corpus, 16 * 1024),
    )
    .expect("fault-free run");
    let kill_at = base.timings.total.as_secs() * 0.35;

    let faulted = run_job(
        &mut cluster_with(Some(FaultPlan::new().kill(2, kill_at))),
        &job,
        text::chunk_text(&corpus, 16 * 1024),
    )
    .expect("faulted run survives");

    assert_eq!(faulted.timings.gpus_lost, 1);
    assert_eq!(
        faulted.outputs, base.outputs,
        "accumulate-mode outputs diverged after a kill"
    );
    assert_eq!(
        wo::counts_from_output(&dict, &faulted.merged_output()),
        expect,
        "word counts no longer match the CPU reference"
    );
}

#[test]
fn transient_transfer_failures_retry_and_converge() {
    let (base_out, _) = run_sio(None);
    // Every 0 -> 1 transfer fails twice before the third attempt lands;
    // two retries fit well inside the default budget of 8.
    let plan = FaultPlan::new().transfer_fail(Some(0), Some(1), 0.0, f64::INFINITY, 2);

    let data = sio_data();
    let mut cluster = cluster_with(Some(plan));
    let (result, trace) = run_job_traced(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect("retries must mask transient failures");

    assert_eq!(result.outputs, base_out, "outputs diverged under retries");
    assert!(
        result.timings.transfer_retries > 0,
        "retries must be counted in JobTimings"
    );
    let retries_traced = trace.events_of(TraceKind::Retry).count() as u32;
    assert_eq!(
        retries_traced, result.timings.transfer_retries,
        "every retry must appear in the trace"
    );
}

#[test]
fn permanent_transfer_failure_aborts_with_source_chain() {
    // More consecutive failures than the engine will ever retry.
    let budget = EngineTuning::default().max_transfer_retries;
    let plan = FaultPlan::new().transfer_fail(Some(0), Some(1), 0.0, f64::INFINITY, budget + 100);

    let data = sio_data();
    let mut cluster = cluster_with(Some(plan));
    let err = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect_err("the 0 -> 1 route is permanently down");

    match &err {
        EngineError::TransferFailed { attempt, fault } => {
            assert!(*attempt > budget, "gave up before exhausting retries");
            assert_eq!((fault.from, fault.to), (0, 1));
        }
        other => panic!("expected TransferFailed, got {other}"),
    }
    // The typed cause must be reachable through the std error chain, not
    // just baked into the display string.
    let source = std::error::Error::source(&err).expect("TransferFailed must expose a source");
    let fault = source
        .downcast_ref::<TransferFault>()
        .expect("source must be the fabric-level TransferFault");
    assert_eq!((fault.from, fault.to), (0, 1));
}

#[test]
fn injected_stalls_delay_but_preserve_output() {
    let (base_out, base_t) = run_sio(None);
    let horizon = base_t.total.as_secs();
    let plan = FaultPlan::new().stall(0, horizon * 0.2, horizon * 0.3);

    let (out, t) = run_sio(Some(plan));
    assert_eq!(out, base_out, "outputs diverged under an injected stall");
    assert!(t.stalls_injected >= 1);
    assert!(
        t.total >= base_t.total,
        "a straggler stall cannot speed the job up"
    );
}

#[test]
fn identical_seeds_reproduce_identical_plans_traces_and_timings() {
    let horizon = fault_free_makespan();
    let plan_a = FaultPlan::generate(7, RANKS, horizon);
    let plan_b = FaultPlan::generate(7, RANKS, horizon);
    assert_eq!(plan_a, plan_b, "same seed must generate the same plan");
    assert_ne!(
        plan_a,
        FaultPlan::generate(8, RANKS, horizon),
        "different seeds should explore different plans"
    );

    let data = sio_data();
    let run = |plan: &FaultPlan| {
        let mut cluster = cluster_with(Some(plan.clone()));
        run_job_traced(
            &mut cluster,
            &SioJob::default(),
            sio_chunks(&data, 16 * 1024),
        )
        .expect("generated plans always leave a survivor")
    };
    let (res_a, trace_a) = run(&plan_a);
    let (res_b, trace_b) = run(&plan_b);
    assert_eq!(res_a.outputs, res_b.outputs);
    assert_eq!(res_a.timings, res_b.timings);
    assert_eq!(
        trace_a.to_csv(),
        trace_b.to_csv(),
        "identical seeds must replay identical schedules"
    );
}

#[test]
fn mid_job_gpu_add_steals_work_and_preserves_output() {
    // A 5th GPU joins a 4-reducer job early: it must absorb map work by
    // stealing, never hold reduce output, and leave the answer bit-equal
    // to the plain 4-GPU run.
    let (base_out, base_t) = run_sio(None);
    let join_at = base_t.total.as_secs() * 0.05;

    let data = sio_data();
    let mut cluster = Cluster::accelerator(RANKS + 1, GpuSpec::gt200());
    cluster.set_fault_plan(Some(FaultPlan::new().add(RANKS, join_at)));
    let (result, trace) = run_job_traced(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect("elastic run survives");
    let (out, t) = (result.outputs, result.timings);

    assert_eq!(t.gpus_added, 1, "the join must be counted");
    assert_eq!(
        trace.events_of(TraceKind::GpuAdded).count(),
        1,
        "the join must appear in the trace"
    );
    assert_eq!(
        &out[..RANKS as usize],
        &base_out[..],
        "outputs diverged after a mid-job GPU add"
    );
    assert!(
        out[RANKS as usize].is_empty(),
        "an added GPU is not a reducer and must hold no output"
    );
    assert!(
        t.chunks_per_rank[RANKS as usize] >= 1,
        "the added GPU must steal at least one chunk (got {:?})",
        t.chunks_per_rank
    );
    assert!(t.chunks_stolen >= 1, "elastic absorption works by stealing");
    // Steal-only absorption: every chunk is still mapped exactly once.
    let total: u32 = t.chunks_per_rank.iter().sum();
    assert_eq!(
        total, 20,
        "chunks lost or duplicated: {:?}",
        t.chunks_per_rank
    );
}

#[test]
fn gpu_add_interleaved_with_kill_and_stall_preserves_output() {
    let (base_out, base_t) = run_sio(None);
    let horizon = base_t.total.as_secs();
    let plan = FaultPlan::new()
        .add(RANKS, horizon * 0.05)
        .kill(1, horizon * 0.30)
        .stall(0, horizon * 0.20, horizon * 0.25);

    let (out, t) = run_sio_on(RANKS + 1, Some(plan));
    assert_eq!(t.gpus_added, 1);
    assert_eq!(t.gpus_lost, 1);
    assert!(t.stalls_injected >= 1);
    assert_eq!(
        &out[..RANKS as usize],
        &base_out[..],
        "outputs diverged when a join raced kills and stalls"
    );
    assert!(out[RANKS as usize].is_empty());
}

#[test]
fn accumulate_mode_absorbs_a_mid_job_add() {
    // WO runs in Accumulation mode: the late joiner must get its own
    // accumulation state initialised at join time, and its partial counts
    // must merge back without loss or duplication.
    let dict = Arc::new(Dictionary::generate(300, 11));
    let corpus = text::generate_text(&dict, 120_000, 12);
    let expect = wo::cpu_reference(&dict, &corpus);
    let job = WoJob::new(dict.clone(), RANKS);

    let base = run_job(
        &mut cluster_with(None),
        &job,
        text::chunk_text(&corpus, 16 * 1024),
    )
    .expect("fault-free run");
    let join_at = base.timings.total.as_secs() * 0.05;

    let mut cluster = Cluster::accelerator(RANKS + 1, GpuSpec::gt200());
    cluster.set_fault_plan(Some(FaultPlan::new().add(RANKS, join_at)));
    let elastic = run_job(&mut cluster, &job, text::chunk_text(&corpus, 16 * 1024))
        .expect("elastic run survives");

    assert_eq!(elastic.timings.gpus_added, 1);
    assert_eq!(
        &elastic.outputs[..RANKS as usize],
        &base.outputs[..],
        "accumulate-mode outputs diverged after a mid-job add"
    );
    assert!(elastic.outputs[RANKS as usize].is_empty());
    assert_eq!(
        wo::counts_from_output(&dict, &elastic.merged_output()),
        expect,
        "word counts no longer match the CPU reference"
    );
}

#[test]
fn elastic_chaos_sweep_preserves_output_across_seeds() {
    // Kills, stalls, transfer faults AND joins, all at once, across
    // seeds: the answer never moves.
    let (base_out, base_t) = run_sio(None);
    let horizon = base_t.total.as_secs();
    for seed in 0..6u64 {
        let plan = FaultPlan::generate_elastic(seed, RANKS, 2, horizon);
        let (out, t) = run_sio_on(RANKS + 2, Some(plan.clone()));
        assert_eq!(
            &out[..RANKS as usize],
            &base_out[..],
            "seed {seed} diverged (plan: {plan:?}, lost {}, added {}, requeued {})",
            t.gpus_lost,
            t.gpus_added,
            t.chunks_requeued
        );
        for (r, o) in out.iter().enumerate().skip(RANKS as usize) {
            assert!(o.is_empty(), "seed {seed}: joiner {r} held output");
        }
        assert_eq!(t.gpus_added, 2, "seed {seed}: both joins must register");
    }
}

#[test]
fn chaos_sweep_preserves_output_across_seeds() {
    let (base_out, base_t) = run_sio(None);
    let horizon = base_t.total.as_secs();
    for seed in 0..8u64 {
        let plan = FaultPlan::generate(seed, RANKS, horizon);
        let (out, t) = run_sio(Some(plan.clone()));
        assert_eq!(
            out, base_out,
            "seed {seed} diverged (plan: {:?}, lost {}, requeued {}, retries {}, stalls {})",
            plan, t.gpus_lost, t.chunks_requeued, t.transfer_retries, t.stalls_injected
        );
    }
}
