//! Engine-level invariants: determinism, timing accounting, load
//! balancing, and the hardware-scaling equivalence the harness relies on.

use gpmr::prelude::*;
use gpmr::sim_gpu::SimDuration;
use gpmr_apps::sio::{generate_integers, sio_chunks};

fn run_sio(gpus: u32, elements: usize) -> gpmr::core::JobResult<u32, u32> {
    let data = generate_integers(elements, 42);
    let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
    run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 32 * 1024),
    )
    .unwrap()
}

#[test]
fn runs_are_deterministic() {
    let a = run_sio(6, 50_000);
    let b = run_sio(6, 50_000);
    assert_eq!(a.total_time(), b.total_time());
    assert_eq!(a.merged_output(), b.merged_output());
    assert_eq!(a.timings.chunks_per_rank, b.timings.chunks_per_rank);
    assert_eq!(a.timings.chunks_stolen, b.timings.chunks_stolen);
}

#[test]
fn stage_times_sum_to_makespan_on_every_rank() {
    let result = run_sio(8, 100_000);
    for (r, st) in result.timings.per_rank.iter().enumerate() {
        let sum = st.total().as_secs();
        let makespan = result.timings.total.as_secs();
        assert!(
            (sum - makespan).abs() < 1e-9 * makespan.max(1.0),
            "rank {r}: {sum} vs {makespan}"
        );
    }
}

#[test]
fn every_rank_maps_some_chunks_on_balanced_input() {
    let result = run_sio(8, 400_000);
    for (r, &n) in result.timings.chunks_per_rank.iter().enumerate() {
        assert!(n > 0, "rank {r} mapped nothing");
    }
    assert_eq!(result.timings.pairs_emitted, 400_000);
    assert_eq!(result.timings.pairs_shuffled, 400_000);
}

#[test]
fn dynamic_scheduler_steals_on_skewed_queues() {
    // Chunks of wildly different sizes force queue imbalance: the
    // round-robin distribution gives some ranks far more *work* even with
    // equal chunk counts, so stealing should fire.
    let data = generate_integers(600_000, 3);
    let mut chunks = sio_chunks(&data, 8 * 1024);
    // Pile the large chunks onto the queues of the first ranks by
    // re-splitting unevenly: first 80% of data in big chunks, rest tiny.
    chunks.sort_by_key(|c| std::cmp::Reverse(c.items.len()));
    let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
    let result = run_job(&mut cluster, &SioJob::default(), chunks).unwrap();
    // All data still counted exactly once.
    let total: u64 = result
        .merged_output()
        .vals
        .iter()
        .map(|&v| u64::from(v))
        .sum();
    assert_eq!(total, 600_000);
}

#[test]
fn more_gpus_never_lose_badly_on_large_jobs() {
    let t2 = run_sio(2, 500_000).total_time();
    let t8 = run_sio(8, 500_000).total_time();
    assert!(
        t8.as_secs() < t2.as_secs(),
        "8 GPUs ({t8}) should beat 2 GPUs ({t2}) on a large job"
    );
}

#[test]
fn scaled_hardware_reproduces_full_scale_times() {
    // The harness's workload-scaling trick: workload/κ on hardware/κ
    // gives (approximately) the same simulated time. Compare two scale
    // factors of the same full-size job.
    let full = 512_000usize;
    let times: Vec<SimDuration> = [8u64, 16]
        .iter()
        .map(|&k| {
            let elements = full / k as usize;
            let data = generate_integers(elements, 9);
            let mut cluster = Cluster::accelerator_scaled(4, GpuSpec::gt200(), k as f64);
            let chunk_bytes = (4 * elements / 16).max(1024);
            let r = run_job(
                &mut cluster,
                &SioJob::default(),
                sio_chunks(&data, chunk_bytes),
            )
            .unwrap();
            r.total_time()
        })
        .collect();
    let (a, b) = (times[0].as_secs(), times[1].as_secs());
    assert!(
        (a - b).abs() / a.max(b) < 0.25,
        "scale-8 {a} vs scale-16 {b} should agree within 25%"
    );
}

#[test]
fn efficiency_definition_matches_paper() {
    // Efficiency = speedup / #GPUs, bounded by ~1 for non-superlinear
    // in-core jobs.
    let t1 = run_sio(1, 200_000).total_time();
    let t4 = run_sio(4, 200_000).total_time();
    let eff = gpmr::core::efficiency(t1, t4, 4);
    assert!(eff > 0.2 && eff < 1.3, "efficiency {eff}");
    assert!((gpmr::core::speedup(t1, t4) / 4.0 - eff).abs() < 1e-12);
}

#[test]
fn empty_job_completes_with_zero_output() {
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let result = run_job(&mut cluster, &SioJob::default(), Vec::new()).unwrap();
    assert!(result.merged_output().is_empty());
    assert_eq!(result.outputs.len(), 4);
}

#[test]
fn chunked_reduce_matches_single_kernel_reduce() {
    // The paper's reduce-chunking callback (§4.3): splitting the key
    // segments across many reduce kernels must not change the output,
    // only add kernel launches (and their simulated time).
    let data = generate_integers(120_000, 11);
    let chunks = sio_chunks(&data, 32 * 1024);

    let mut c1 = Cluster::accelerator(2, GpuSpec::gt200());
    let whole = run_job(&mut c1, &SioJob::default(), chunks.clone()).unwrap();
    let mut c2 = Cluster::accelerator(2, GpuSpec::gt200());
    let chunked = run_job(&mut c2, &SioJob::default().with_reduce_chunk(1000), chunks).unwrap();

    assert_eq!(whole.merged_output(), chunked.merged_output());
    // Chunked reduce pays more launch overhead.
    assert!(chunked.total_time().as_secs() >= whole.total_time().as_secs());
}

#[test]
fn gpu_direct_networking_speeds_up_shuffle_heavy_jobs() {
    // The paper's concluding hardware wish: GPUs sourcing/sinking network
    // I/O directly removes the PCI-e round trips around every pair
    // transfer. A shuffle-heavy SIO job must get faster; results must not
    // change.
    let data = generate_integers(400_000, 21);
    let chunks = sio_chunks(&data, 64 * 1024);
    let mut plain = Cluster::accelerator(8, GpuSpec::gt200());
    let without = run_job(&mut plain, &SioJob::default(), chunks.clone()).unwrap();
    let mut direct = Cluster::accelerator(8, GpuSpec::gt200()).with_gpu_direct(true);
    let with = run_job(&mut direct, &SioJob::default(), chunks).unwrap();

    assert_eq!(without.merged_output(), with.merged_output());
    assert!(
        with.total_time().as_secs() < without.total_time().as_secs(),
        "GPU-direct {} should beat host-staged {}",
        with.total_time(),
        without.total_time()
    );
}

#[test]
fn reduce_memory_clamp_handles_tiny_devices() {
    // A device whose memory cannot hold all values in one reduce chunk
    // still completes (the engine halves the chunk until it fits).
    let data = generate_integers(40_000, 22);
    let spec = GpuSpec::gt200().with_mem_capacity(256 * 1024);
    let mut cluster = Cluster::new(gpmr::sim_net::Topology::new(1, 2, 2), spec);
    let result = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .unwrap();
    let total: u64 = result
        .merged_output()
        .vals
        .iter()
        .map(|&v| u64::from(v))
        .sum();
    assert_eq!(total, 40_000);
}

#[test]
fn dynamic_scheduling_beats_static_on_skewed_work() {
    use gpmr::core::{run_job_tuned, EngineTuning};
    // Adversarial queue skew: the round-robin distribution assigns chunk i
    // to rank i % 8, so placing every big chunk at positions = 0 (mod 8)
    // piles all the heavy work onto rank 0's queue. The big chunks are
    // 128x the small ones, so rank 0 stays transfer-bound long after the
    // light ranks drain — skew the deep upload pipeline cannot hide, so
    // it must be stolen away.
    let data = generate_integers(2_211_840, 31);
    let heavy = sio_chunks(&data[..2_097_152], 256 * 1024); // 32 big chunks
    let light = sio_chunks(&data[2_097_152..], 2 * 1024); // 224 tiny chunks
    let mut heavy = heavy.into_iter();
    let mut light = light.into_iter();
    let mut big: Vec<_> = Vec::new();
    let mut i = 0usize;
    loop {
        let next = if i.is_multiple_of(8) {
            heavy.next().or_else(|| light.next())
        } else {
            light.next().or_else(|| heavy.next())
        };
        match next {
            Some(c) => big.push(c),
            None => break,
        }
        i += 1;
    }

    let static_tuning = EngineTuning {
        allow_stealing: false,
        ..EngineTuning::default()
    };
    let mut c1 = Cluster::accelerator(8, GpuSpec::gt200());
    let dynamic = run_job(&mut c1, &SioJob::default(), big.clone()).unwrap();
    let mut c2 = Cluster::accelerator(8, GpuSpec::gt200());
    let fixed = run_job_tuned(&mut c2, &SioJob::default(), big, &static_tuning).unwrap();

    assert_eq!(dynamic.merged_output(), fixed.merged_output());
    assert_eq!(fixed.timings.chunks_stolen, 0);
    assert!(
        dynamic.timings.chunks_stolen > 0,
        "skew should trigger steals"
    );
    assert!(
        dynamic.total_time().as_secs() < fixed.total_time().as_secs(),
        "dynamic {} should beat static {}",
        dynamic.total_time(),
        fixed.total_time()
    );
}

#[test]
fn zeroed_overheads_form_the_software_ceiling() {
    use gpmr::core::{run_job_tuned, EngineTuning};
    let data = generate_integers(100_000, 32);
    let chunks = sio_chunks(&data, 16 * 1024);
    let ideal = EngineTuning {
        sched_overhead_s: 0.0,
        setup_base_s: 0.0,
        setup_per_rank_s: 0.0,
        ..EngineTuning::default()
    };
    let mut c1 = Cluster::accelerator(8, GpuSpec::gt200());
    let real = run_job(&mut c1, &SioJob::default(), chunks.clone()).unwrap();
    let mut c2 = Cluster::accelerator(8, GpuSpec::gt200());
    let ceiling = run_job_tuned(&mut c2, &SioJob::default(), chunks, &ideal).unwrap();
    assert_eq!(real.merged_output(), ceiling.merged_output());
    assert!(ceiling.total_time().as_secs() < real.total_time().as_secs());
}

#[test]
fn more_ranks_than_chunks_leaves_idle_ranks_harmless() {
    let data = generate_integers(6_000, 41);
    // Three chunks on a 16-GPU cluster: 13 ranks never map anything.
    let chunks = sio_chunks(&data, 8 * 1024);
    assert!(chunks.len() < 16, "test premise: fewer chunks than ranks");
    let mut cluster = Cluster::accelerator(16, GpuSpec::gt200());
    let result = run_job(&mut cluster, &SioJob::default(), chunks).unwrap();
    let total: u64 = result
        .merged_output()
        .vals
        .iter()
        .map(|&v| u64::from(v))
        .sum();
    assert_eq!(total, 6_000);
    let mappers = result
        .timings
        .chunks_per_rank
        .iter()
        .filter(|&&n| n > 0)
        .count();
    assert!(mappers <= 3);
    // Stage accounting still sums to the makespan on idle ranks.
    for st in &result.timings.per_rank {
        assert!((st.total().as_secs() - result.total_time().as_secs()).abs() < 1e-12);
    }
}
