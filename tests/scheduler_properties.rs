//! Property tests for the dynamic work queues: under *any* interleaving
//! of local pops, steals, and kill-style drains, no chunk is ever lost or
//! duplicated, `total_remaining` stays conserved, and `steal_victim`
//! never picks the thief or a queue too light to be worth robbing.
//! Plus the engine-level corollary the job service relies on: stopping a
//! run mid-flight (`RunControl::stop_at`) accounts for every input chunk
//! as either committed or released, and leaves no device memory resident.

use gpmr::apps::sio::{generate_integers, sio_chunks};
use gpmr::apps::SioJob;
use gpmr::core::{run_job_controlled, EngineError, RunControl, WorkQueues};
use gpmr::sim_gpu::{GpuSpec, SimTime};
use gpmr::sim_net::Cluster;
use gpmr::telemetry::Telemetry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_interleaving_loses_or_duplicates_chunks(
        n_chunks in 0usize..64,
        ranks in 1u32..9,
        ops in prop::collection::vec((0u8..4, any::<u32>()), 0..200),
    ) {
        let mut q = WorkQueues::distribute((0..n_chunks as u32).collect(), ranks);
        let ranks = q.ranks();
        let mut popped: Vec<u32> = Vec::new();
        for (op, sel) in ops {
            let r = sel % ranks;
            match op {
                // A rank takes its own next chunk.
                0 => {
                    if let Some(c) = q.pop_local(r) {
                        popped.push(c);
                    }
                }
                // An idle rank steals: the stolen chunk moves to its queue.
                1 => {
                    if let Some(victim) = q.steal_victim(r) {
                        prop_assert_ne!(victim, r);
                        prop_assert!(
                            q.remaining(victim) >= 2,
                            "victim rank {} too light to steal from",
                            victim
                        );
                        let c = q.steal_from(victim);
                        prop_assert!(c.is_some(), "chosen victim was empty");
                        q.push_back(r, c.unwrap());
                    }
                }
                // Kill-style recovery: the rank's whole queue migrates to
                // its neighbour (what the engine does on GPU loss).
                2 => {
                    if ranks > 1 {
                        let dest = (r + 1) % ranks;
                        for c in q.drain_rank(r) {
                            q.push_back(dest, c);
                        }
                        prop_assert_eq!(q.remaining(r), 0);
                    }
                }
                // Bookkeeping consistency check.
                _ => {
                    let by_rank: usize = (0..ranks).map(|x| q.remaining(x)).sum();
                    prop_assert_eq!(q.total_remaining(), by_rank);
                }
            }
            prop_assert_eq!(
                popped.len() + q.total_remaining(),
                n_chunks,
                "chunks lost or duplicated mid-interleaving"
            );
        }
        // Drain everything left: each chunk must appear exactly once.
        let mut seen = popped;
        for r in 0..ranks {
            while let Some(c) = q.pop_local(r) {
                seen.push(c);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_chunks as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn steal_victim_is_never_the_thief_or_underloaded(
        loads in prop::collection::vec(0usize..6, 1..9),
        thief_sel in any::<u32>(),
    ) {
        let ranks = loads.len() as u32;
        let mut q: WorkQueues<u32> = WorkQueues::distribute(Vec::new(), ranks);
        let mut id = 0u32;
        for (r, &load) in loads.iter().enumerate() {
            for _ in 0..load {
                q.push_back(r as u32, id);
                id += 1;
            }
        }
        let thief = thief_sel % ranks;
        match q.steal_victim(thief) {
            Some(v) => {
                prop_assert_ne!(v, thief);
                prop_assert!(q.remaining(v) >= 2, "victim has too little work");
                // Most-loaded eligible rank wins; ties break to lowest.
                for r in 0..ranks {
                    if r == thief {
                        continue;
                    }
                    prop_assert!(
                        q.remaining(r) < q.remaining(v)
                            || (q.remaining(r) == q.remaining(v) && r >= v),
                        "rank {} (load {}) beats chosen victim {} (load {})",
                        r,
                        q.remaining(r),
                        v,
                        q.remaining(v)
                    );
                }
            }
            None => {
                for r in 0..ranks {
                    if r != thief {
                        prop_assert!(
                            q.remaining(r) < 2,
                            "eligible victim {} was missed",
                            r
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distribute_on_targets_only_and_conserves_chunks(
        n_chunks in 0usize..64,
        ranks in 1u32..9,
        target_mask in any::<u32>(),
        ops in prop::collection::vec(any::<u32>(), 0..80),
    ) {
        // Elastic jobs distribute the initial chunks over the reducer
        // subset only (GPUs with a pending `add` join later, empty).
        let targets: Vec<u32> = (0..ranks).filter(|r| target_mask & (1 << r) != 0).collect();
        let mut q = WorkQueues::distribute_on((0..n_chunks as u32).collect(), ranks, &targets);
        prop_assert_eq!(q.ranks(), ranks, "every rank gets a queue, target or not");
        prop_assert_eq!(q.total_remaining(), n_chunks, "distribution dropped chunks");

        // Empty target set falls back to all ranks; otherwise non-targets
        // start empty and targets are balanced round-robin (within 1).
        if targets.is_empty() {
            let loaded = (0..ranks).filter(|&r| q.remaining(r) > 0).count();
            prop_assert!(n_chunks == 0 || loaded > 0);
        } else {
            for r in 0..ranks {
                if !targets.contains(&r) {
                    prop_assert_eq!(
                        q.remaining(r), 0,
                        "non-target rank {} was seeded with work", r
                    );
                }
            }
            let per: Vec<usize> = targets.iter().map(|&r| q.remaining(r)).collect();
            let (min, max) = (per.iter().min().unwrap(), per.iter().max().unwrap());
            prop_assert!(max - min <= 1, "unbalanced target loads: {:?}", per);
        }

        // A late joiner (non-target) can still acquire work by stealing,
        // and the usual pop/steal interleavings conserve every chunk.
        let mut popped: Vec<u32> = Vec::new();
        for sel in ops {
            let r = sel % ranks;
            if sel % 2 == 0 {
                if let Some(c) = q.pop_local(r) {
                    popped.push(c);
                }
            } else if let Some(v) = q.steal_victim(r) {
                prop_assert_ne!(v, r);
                let c = q.steal_from(v);
                prop_assert!(c.is_some());
                q.push_back(r, c.unwrap());
            }
            prop_assert_eq!(popped.len() + q.total_remaining(), n_chunks);
        }
        let mut seen = popped;
        for r in 0..ranks {
            while let Some(c) = q.pop_local(r) {
                seen.push(c);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_chunks as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn joiner_outside_targets_can_be_fed_by_steals(
        n_chunks in 8usize..64,
        ranks in 2u32..9,
    ) {
        // The elastic scheduler's core move: all work sits on ranks
        // 0..ranks-1, the joiner (last rank) holds nothing, and a steal
        // lands it real work without disturbing conservation.
        let targets: Vec<u32> = (0..ranks - 1).collect();
        let mut q = WorkQueues::distribute_on((0..n_chunks as u32).collect(), ranks, &targets);
        let joiner = ranks - 1;
        prop_assert_eq!(q.remaining(joiner), 0);
        // 8+ chunks over <= 8 target ranks leaves some queue with >= 2.
        let v = q.steal_victim(joiner);
        prop_assert!(v.is_some(), "profitable victim must exist for the joiner");
        let c = q.steal_from(v.unwrap()).unwrap();
        q.push_back(joiner, c);
        prop_assert_eq!(q.remaining(joiner), 1);
        prop_assert_eq!(q.total_remaining(), n_chunks);
    }

    #[test]
    fn pops_and_steals_preserve_fifo_order_per_rank(
        n_chunks in 1usize..40,
        ranks in 1u32..6,
        pops in prop::collection::vec(any::<u32>(), 0..60),
    ) {
        // Chunks popped locally on one rank must come out in the order the
        // round-robin distribution queued them, even with steals removing
        // tail chunks in between.
        let mut q = WorkQueues::distribute((0..n_chunks as u32).collect(), ranks);
        let ranks = q.ranks();
        let mut last_popped: Vec<Option<u32>> = vec![None; ranks as usize];
        for sel in pops {
            let r = sel % ranks;
            if sel % 3 == 0 {
                if let Some(v) = q.steal_victim(r) {
                    q.steal_from(v);
                }
            } else if let Some(c) = q.pop_local(r) {
                if let Some(prev) = last_popped[r as usize] {
                    prop_assert!(
                        c > prev,
                        "rank {} popped {} after {} (FIFO violated)",
                        r,
                        c,
                        prev
                    );
                }
                last_popped[r as usize] = Some(c);
            }
        }
    }

    /// Mid-flight cancellation conserves chunks and releases device
    /// memory: for *any* stop instant, `committed + released` covers the
    /// whole input and every GPU ends with zero bytes resident.
    #[test]
    fn cancellation_conserves_chunks_and_frees_memory(
        n in 10_000usize..50_000,
        seed in 0u64..100,
        stop_frac in 0.05f64..1.5,
    ) {
        let data = generate_integers(n, seed);
        let chunks = sio_chunks(&data, 8 * 1024);
        let n_chunks = chunks.len() as u32;

        // Learn the fault-free makespan, then stop at a fraction of it.
        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let full = run_job_controlled(
            &mut cluster,
            &SioJob::default(),
            chunks.clone(),
            &Default::default(),
            &Telemetry::disabled(),
            &RunControl::unrestricted(),
        ).expect("unrestricted run completes");
        let makespan = full.timings.total.as_secs();
        let stop = SimTime::from_secs(makespan * stop_frac);

        let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
        let out = run_job_controlled(
            &mut cluster,
            &SioJob::default(),
            chunks,
            &Default::default(),
            &Telemetry::disabled(),
            &RunControl::stop_at(stop),
        );
        match out {
            Err(EngineError::Cancelled { chunks_committed, chunks_released, .. }) => {
                prop_assert_eq!(
                    chunks_committed + chunks_released,
                    n_chunks,
                    "cancel must account for every chunk"
                );
                for r in 0..4 {
                    prop_assert_eq!(
                        cluster.gpu(r).mem.used(),
                        0,
                        "rank {} holds device memory after cancel",
                        r
                    );
                }
            }
            Ok(done) => {
                // Stopping at or past the makespan legitimately completes.
                prop_assert!(
                    makespan * stop_frac >= makespan - 1e-12,
                    "run completed despite stop at {} < makespan {}",
                    makespan * stop_frac,
                    makespan
                );
                prop_assert_eq!(done.outputs, full.outputs);
            }
            Err(e) => prop_assert!(false, "unexpected engine error: {}", e),
        }
    }
}
