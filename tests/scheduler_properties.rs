//! Property tests for the dynamic work queues: under *any* interleaving
//! of local pops, steals, and kill-style drains, no chunk is ever lost or
//! duplicated, `total_remaining` stays conserved, and `steal_victim`
//! never picks the thief or a queue too light to be worth robbing.

use gpmr::core::WorkQueues;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_interleaving_loses_or_duplicates_chunks(
        n_chunks in 0usize..64,
        ranks in 1u32..9,
        ops in prop::collection::vec((0u8..4, any::<u32>()), 0..200),
    ) {
        let mut q = WorkQueues::distribute((0..n_chunks as u32).collect(), ranks);
        let ranks = q.ranks();
        let mut popped: Vec<u32> = Vec::new();
        for (op, sel) in ops {
            let r = sel % ranks;
            match op {
                // A rank takes its own next chunk.
                0 => {
                    if let Some(c) = q.pop_local(r) {
                        popped.push(c);
                    }
                }
                // An idle rank steals: the stolen chunk moves to its queue.
                1 => {
                    if let Some(victim) = q.steal_victim(r) {
                        prop_assert_ne!(victim, r);
                        prop_assert!(
                            q.remaining(victim) >= 2,
                            "victim rank {} too light to steal from",
                            victim
                        );
                        let c = q.steal_from(victim);
                        prop_assert!(c.is_some(), "chosen victim was empty");
                        q.push_back(r, c.unwrap());
                    }
                }
                // Kill-style recovery: the rank's whole queue migrates to
                // its neighbour (what the engine does on GPU loss).
                2 => {
                    if ranks > 1 {
                        let dest = (r + 1) % ranks;
                        for c in q.drain_rank(r) {
                            q.push_back(dest, c);
                        }
                        prop_assert_eq!(q.remaining(r), 0);
                    }
                }
                // Bookkeeping consistency check.
                _ => {
                    let by_rank: usize = (0..ranks).map(|x| q.remaining(x)).sum();
                    prop_assert_eq!(q.total_remaining(), by_rank);
                }
            }
            prop_assert_eq!(
                popped.len() + q.total_remaining(),
                n_chunks,
                "chunks lost or duplicated mid-interleaving"
            );
        }
        // Drain everything left: each chunk must appear exactly once.
        let mut seen = popped;
        for r in 0..ranks {
            while let Some(c) = q.pop_local(r) {
                seen.push(c);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_chunks as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn steal_victim_is_never_the_thief_or_underloaded(
        loads in prop::collection::vec(0usize..6, 1..9),
        thief_sel in any::<u32>(),
    ) {
        let ranks = loads.len() as u32;
        let mut q: WorkQueues<u32> = WorkQueues::distribute(Vec::new(), ranks);
        let mut id = 0u32;
        for (r, &load) in loads.iter().enumerate() {
            for _ in 0..load {
                q.push_back(r as u32, id);
                id += 1;
            }
        }
        let thief = thief_sel % ranks;
        match q.steal_victim(thief) {
            Some(v) => {
                prop_assert_ne!(v, thief);
                prop_assert!(q.remaining(v) >= 2, "victim has too little work");
                // Most-loaded eligible rank wins; ties break to lowest.
                for r in 0..ranks {
                    if r == thief {
                        continue;
                    }
                    prop_assert!(
                        q.remaining(r) < q.remaining(v)
                            || (q.remaining(r) == q.remaining(v) && r >= v),
                        "rank {} (load {}) beats chosen victim {} (load {})",
                        r,
                        q.remaining(r),
                        v,
                        q.remaining(v)
                    );
                }
            }
            None => {
                for r in 0..ranks {
                    if r != thief {
                        prop_assert!(
                            q.remaining(r) < 2,
                            "eligible victim {} was missed",
                            r
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pops_and_steals_preserve_fifo_order_per_rank(
        n_chunks in 1usize..40,
        ranks in 1u32..6,
        pops in prop::collection::vec(any::<u32>(), 0..60),
    ) {
        // Chunks popped locally on one rank must come out in the order the
        // round-robin distribution queued them, even with steals removing
        // tail chunks in between.
        let mut q = WorkQueues::distribute((0..n_chunks as u32).collect(), ranks);
        let ranks = q.ranks();
        let mut last_popped: Vec<Option<u32>> = vec![None; ranks as usize];
        for sel in pops {
            let r = sel % ranks;
            if sel % 3 == 0 {
                if let Some(v) = q.steal_victim(r) {
                    q.steal_from(v);
                }
            } else if let Some(c) = q.pop_local(r) {
                if let Some(prev) = last_popped[r as usize] {
                    prop_assert!(
                        c > prev,
                        "rank {} popped {} after {} (FIFO violated)",
                        r,
                        c,
                        prev
                    );
                }
                last_popped[r as usize] = Some(c);
            }
        }
    }
}
