//! SLO observability suite: the terminal-rate partition invariant over
//! arbitrary workloads, Little's-law agreement between the sampled
//! queue-depth series and the measured queue waits at the EXPERIMENTS.md
//! overload point, flight-recorder postmortem validity (including the
//! triggering job's span), alert determinism, and bit-identical reports
//! across repeated runs.

use gpmr::service::{
    run_script, JobKind, JobService, JobSpec, JobStatus, ObsConfig, ServiceConfig, SloPolicy,
    TenantConfig,
};
use gpmr::telemetry::export::validate_perfetto;
use gpmr::telemetry::{AlertRule, Telemetry};
use proptest::prelude::*;

const DEMO: &str = include_str!("../workloads/service_demo.wl");

fn obs_full() -> ObsConfig {
    ObsConfig {
        alerts: AlertRule::parse_list(
            "misses: sum(service.deadline_missed) > 0; \
             deep: last(service.queue_depth) > 8 for 0.0005",
        )
        .expect("rules parse"),
        flight_capacity: 1024,
        ..ObsConfig::default()
    }
}

// --- Little's law at the M/D/c overload point (EXPERIMENTS.md) -----------

/// The ρ = 4.26 row of the queue-wait table: 16 identical SIO jobs
/// (`n=40000`, solo makespan 1.706 ms on 4 GPUs) at 200 µs inter-arrival
/// into a 2-engine pool. The queue-depth series is sampled at every
/// event boundary, so its step integral must equal the sum of queue
/// waits exactly (Little's law over a deterministic sample path), and
/// the mean wait must land on the published 4.571 ms.
#[test]
fn queue_depth_series_integrates_to_measured_waits() {
    let mut svc = JobService::new(
        ServiceConfig::default(),
        vec![TenantConfig::unlimited("t")],
        Telemetry::enabled(),
    );
    let mut ids = Vec::new();
    for i in 0..16 {
        svc.advance_to(i as f64 * 200e-6);
        ids.push(svc.submit(JobSpec::new(
            "t",
            JobKind::Sio {
                n: 40_000,
                seed: 11,
                chunk_kb: 16,
            },
        )));
    }
    svc.drain();

    let mut wait_sum = 0.0;
    let mut max_wait: f64 = 0.0;
    for &id in &ids {
        let JobStatus::Completed { wait_s, .. } = svc.poll(id).expect("known job") else {
            panic!("{id} did not complete");
        };
        wait_sum += wait_s;
        max_wait = max_wait.max(wait_s);
    }
    let mean_wait = wait_sum / ids.len() as f64;
    assert!(
        (mean_wait - 4.571e-3).abs() < 0.15 * 4.571e-3,
        "mean wait {mean_wait:.6} drifted from the published 4.571 ms"
    );
    assert!(
        (max_wait - 9.143e-3).abs() < 0.15 * 9.143e-3,
        "max wait {max_wait:.6} drifted from the published 9.143 ms"
    );

    // Integrate the sampled step series. Samples are emitted at every
    // queue transition, so between consecutive samples the depth is
    // constant and the integral is exact.
    let snap = svc.telemetry().snapshot();
    let samples: Vec<_> = snap
        .samples
        .iter()
        .filter(|s| s.series == "service.queue_depth")
        .collect();
    assert!(!samples.is_empty(), "queue depth was never sampled");
    let mut integral = 0.0;
    for pair in samples.windows(2) {
        assert!(
            pair[1].ts_s >= pair[0].ts_s,
            "samples must be in time order"
        );
        integral += pair[0].value * (pair[1].ts_s - pair[0].ts_s);
    }
    assert!(
        samples.last().unwrap().value == 0.0,
        "queue must be empty after drain"
    );
    assert!(
        (integral - wait_sum).abs() < 1e-9,
        "∫depth dt = {integral:.9} but Σ waits = {wait_sum:.9}"
    );

    // The same series is queryable through the windowed store.
    let ts = svc.timeseries().expect("enabled telemetry keeps a store");
    assert!(ts.names().any(|n| n == "service.queue_depth"));
}

// --- flight recorder -----------------------------------------------------

#[test]
fn deadline_miss_dumps_a_valid_postmortem_with_the_jobs_span() {
    let mut svc = JobService::new(
        ServiceConfig {
            obs: obs_full(),
            ..ServiceConfig::default()
        },
        vec![TenantConfig::unlimited("t")],
        Telemetry::enabled(),
    );
    let mut spec = JobSpec::new(
        "t",
        JobKind::Sio {
            n: 40_000,
            seed: 3,
            chunk_kb: 16,
        },
    );
    spec.deadline_s = Some(0.0005); // well under the ~1.7 ms makespan
    let id = svc.submit(spec);
    svc.drain();
    assert!(matches!(
        svc.poll(id).unwrap(),
        JobStatus::DeadlineMissed { .. }
    ));

    let pms = svc.postmortems();
    assert!(!pms.is_empty(), "a missed deadline must dump a postmortem");
    let pm = pms
        .iter()
        .find(|p| p.reason == "deadline-missed")
        .expect("deadline-missed dump");
    assert_eq!(pm.subject, id.to_string());
    let stats = validate_perfetto(&pm.trace_json).expect("postmortem is Perfetto-valid");
    assert!(stats.complete_events > 0);
    assert!(
        pm.trace_json.contains(&format!("\"{id}\"")),
        "postmortem must contain the triggering job's span"
    );
    assert_eq!(svc.stats().postmortems, pms.len() as u64);

    // The stable file name round-trips the trigger.
    assert!(pm.file_name().contains("deadline-missed"));
    assert!(pm.file_name().contains(&id.to_string()));
}

#[test]
fn alerts_fire_deterministically_on_the_demo_workload() {
    let run_once = || {
        let (svc, lines) = run_script(
            DEMO,
            ServiceConfig {
                obs: obs_full(),
                ..ServiceConfig::default()
            },
            Telemetry::enabled(),
        )
        .expect("script runs");
        let alerts: Vec<String> = svc
            .alerts()
            .iter()
            .map(|a| format!("{}@{:.9}={}", a.rule, a.at_s, a.value))
            .collect();
        let traces: Vec<(String, String)> = svc
            .postmortems()
            .iter()
            .map(|p| (p.file_name(), p.trace_json.clone()))
            .collect();
        (svc.slo_report().to_json(), alerts, traces, lines)
    };
    let (json_a, alerts_a, traces_a, lines_a) = run_once();
    let (json_b, alerts_b, traces_b, lines_b) = run_once();

    // The demo misses a deadline, so the miss alert must have fired, and
    // everything observable is bit-identical across runs.
    assert!(
        alerts_a.iter().any(|a| a.starts_with("misses")),
        "{alerts_a:?}"
    );
    assert_eq!(json_a, json_b, "SLO report JSON must be bit-identical");
    assert_eq!(alerts_a, alerts_b, "alert sequence must be bit-identical");
    assert_eq!(traces_a, traces_b, "flight traces must be bit-identical");
    assert_eq!(lines_a, lines_b, "report lines must be bit-identical");

    // The stats counters agree with the typed accessors.
    let (svc, _) = run_script(
        DEMO,
        ServiceConfig {
            obs: obs_full(),
            ..ServiceConfig::default()
        },
        Telemetry::enabled(),
    )
    .unwrap();
    assert_eq!(svc.stats().alerts_fired, svc.alerts().len() as u64);
    assert_eq!(svc.stats().postmortems, svc.postmortems().len() as u64);
    // Cancel, deadline miss, GPU loss, and the alert all dump.
    let reasons: Vec<&str> = svc
        .postmortems()
        .iter()
        .map(|p| p.reason.as_str())
        .collect();
    for want in ["cancelled", "deadline-missed", "gpu-lost", "alert"] {
        assert!(reasons.contains(&want), "missing {want} dump: {reasons:?}");
    }
    for pm in svc.postmortems() {
        validate_perfetto(&pm.trace_json).unwrap_or_else(|e| panic!("{}: {e}", pm.file_name()));
    }
}

// --- the terminal-rate partition, under arbitrary workloads --------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever mix of submissions, cancels, deadlines, and rejections a
    /// workload produces, each tenant's terminal outcomes partition:
    /// hit + miss + cancel + fail rates sum to exactly 1 (and terminal
    /// counts reconcile with polled statuses).
    #[test]
    fn slo_rates_partition_over_arbitrary_workloads(
        ops in prop::collection::vec(
            (0u8..3, 0u64..1_000, 1usize..5, 0u8..8),
            1..14,
        ),
    ) {
        let tenants: Vec<TenantConfig> = (0..3)
            .map(|i| TenantConfig {
                name: format!("t{i}"),
                max_concurrent: 2 + i as u32,
                gpu_seconds: if i == 1 { 0.004 } else { f64::INFINITY },
                mem_share: 1.0,
            })
            .collect();
        let mut svc = JobService::new(
            ServiceConfig {
                engines: 2,
                max_queue_depth: 6,
                obs: ObsConfig {
                    slo: SloPolicy { deadline_target: 0.9 },
                    ..ObsConfig::default()
                },
                ..ServiceConfig::default()
            },
            tenants,
            Telemetry::disabled(),
        );
        let mut t = 0.0;
        let mut ids = Vec::new();
        for (tenant_sel, seed, size, action) in ops {
            t += 0.0002;
            svc.advance_to(t);
            if action < 6 || ids.is_empty() {
                let mut spec = JobSpec::new(
                    format!("t{}", tenant_sel % 3),
                    JobKind::Sio { n: size * 1500, seed, chunk_kb: 4 },
                );
                spec.batchable = action % 2 == 0;
                if action == 5 {
                    spec.deadline_s = Some(0.0005);
                }
                ids.push(svc.submit(spec));
            } else {
                let victim = ids[(seed as usize) % ids.len()];
                let _ = svc.cancel(victim);
            }
        }
        svc.drain();

        let report = svc.slo_report();
        let mut terminal_total = 0u64;
        for tslo in &report.tenants {
            let n = tslo.terminal();
            terminal_total += n;
            if n > 0 {
                let sum = tslo.hit_rate()
                    + tslo.miss_rate()
                    + tslo.cancel_rate()
                    + tslo.fail_rate();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "tenant {} rates sum to {sum}",
                    tslo.tenant
                );
                prop_assert!(tslo.gpu_seconds >= 0.0);
            }
            prop_assert_eq!(
                n,
                tslo.completed + tslo.cancelled + tslo.deadline_missed + tslo.failed
            );
            prop_assert!(tslo.submitted >= tslo.rejected + n);
        }
        // Terminal counts reconcile against polled statuses (queued
        // budget-starved jobs are the only non-terminal leftovers).
        let mut polled_terminal = 0u64;
        let mut polled_rejected = 0u64;
        for &id in &ids {
            match svc.poll(id).unwrap() {
                JobStatus::Completed { .. }
                | JobStatus::Cancelled { .. }
                | JobStatus::DeadlineMissed { .. }
                | JobStatus::Failed { .. } => polled_terminal += 1,
                JobStatus::Rejected(_) => polled_rejected += 1,
                JobStatus::Queued | JobStatus::Running { .. } => {}
            }
        }
        prop_assert_eq!(terminal_total, polled_terminal);
        prop_assert_eq!(
            report.tenants.iter().map(|t| t.rejected).sum::<u64>(),
            polled_rejected
        );
    }
}
