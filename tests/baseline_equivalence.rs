//! The baselines must be *correct* implementations, not strawmen: Phoenix
//! and Mars must produce exactly the same answers as the GPMR jobs and
//! the sequential references. The faulted-conformance half then pins the
//! recovery path to the same bar: every app must still match its CPU
//! reference when a GPU dies mid-job.

use std::sync::Arc;

use gpmr::apps::{kmc, lr, mm, sio, text, wo};
use gpmr::baselines::{
    mars_mm, phoenix_mm, run_mars, run_phoenix, MarsKmc, MarsWo, PhoenixConfig, PhoenixKmc,
    PhoenixLr, PhoenixSio, PhoenixWo,
};
use gpmr::core::JobTimings;
use gpmr::prelude::*;
use gpmr::sim_gpu::FaultPlan;
use gpmr::sim_net::CpuSpec;
use gpmr_sim_gpu::Gpu;

fn phoenix_cfg() -> PhoenixConfig {
    PhoenixConfig {
        task_items: 8 * 1024,
        ..PhoenixConfig::default()
    }
}

#[test]
fn phoenix_and_gpmr_agree_on_sio() {
    let data = sio::generate_integers(40_000, 10);
    let expect = sio::cpu_reference(&data);

    let phoenix = run_phoenix(&phoenix_cfg(), &PhoenixSio, &data);
    assert_eq!(phoenix.pairs.len(), expect.len());
    for &(k, v) in &phoenix.pairs {
        assert_eq!(v, expect[&k]);
    }

    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let gpmr = run_job(
        &mut cluster,
        &SioJob::default(),
        sio::sio_chunks(&data, 16 * 1024),
    )
    .unwrap();
    let merged = gpmr.merged_output();
    assert_eq!(merged.len(), phoenix.pairs.len());
}

#[test]
fn phoenix_and_gpmr_agree_on_wo() {
    let dict = Arc::new(Dictionary::generate(250, 11));
    let corpus = text::generate_text(&dict, 40_000, 12);
    let expect = wo::cpu_reference(&dict, &corpus);

    let phoenix = run_phoenix(&phoenix_cfg(), &PhoenixWo::new(dict.clone()), &corpus);
    let mut phoenix_counts = vec![0u32; dict.len()];
    for &(k, v) in &phoenix.pairs {
        phoenix_counts[k as usize] = v;
    }
    assert_eq!(phoenix_counts, expect);

    let mut gpu = Gpu::new(GpuSpec::gt200());
    let mars = run_mars(&mut gpu, &MarsWo::new(dict.clone()), &corpus).unwrap();
    let mut mars_counts = vec![0u32; dict.len()];
    for &(k, v) in &mars.pairs {
        mars_counts[k as usize] = v;
    }
    assert_eq!(mars_counts, expect);
}

#[test]
fn phoenix_mars_and_gpmr_agree_on_kmc() {
    let centers = kmc::initial_centers(10, 13);
    let points = kmc::generate_points(30_000, 10, 14);
    let expect = kmc::cpu_reference(&centers, &points);

    let phoenix = run_phoenix(&phoenix_cfg(), &PhoenixKmc::new(centers.clone()), &points);
    let mut gpu = Gpu::new(GpuSpec::gt200());
    let mars = run_mars(&mut gpu, &MarsKmc::new(centers.clone()), &points).unwrap();

    for pairs in [&phoenix.pairs, &mars.pairs] {
        for &(c, v) in pairs {
            let base = c as usize * (kmc::DIMS + 1);
            for d in 0..=kmc::DIMS {
                let want = expect[base + d];
                assert!(
                    (v[d] - want).abs() <= 1e-6 * (1.0 + want.abs()),
                    "center {c} dim {d}"
                );
            }
        }
    }
}

#[test]
fn phoenix_lr_agrees_with_reference() {
    let samples = lr::generate_samples(30_000, 3.0, 1.0, 15);
    let expect = lr::cpu_reference(&samples);
    let phoenix = run_phoenix(&phoenix_cfg(), &PhoenixLr, &samples);
    for &(k, v) in &phoenix.pairs {
        let want = expect[k as usize];
        assert!((v - want).abs() <= 1e-6 * (1.0 + want.abs()));
    }
}

#[test]
fn all_three_mm_implementations_agree() {
    let a = Matrix::random(96, 16);
    let b = Matrix::random(96, 17);
    let reference = a.multiply_reference(&b);

    let (phoenix_c, phoenix_t) = phoenix_mm(&CpuSpec::dual_opteron_2216(), &a, &b);
    assert_eq!(phoenix_c, reference);

    let mut gpu = Gpu::new(GpuSpec::gt200());
    let (mars_c, mars_t) = mars_mm(&mut gpu, &a, &b).unwrap();
    for (x, y) in mars_c.data.iter().zip(&reference.data) {
        assert!((x - y).abs() < 1e-3);
    }

    let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
    let gpmr = gpmr::apps::mm::run_mm(&mut cluster, &a, &b, 3, 3, 3).unwrap();
    for (x, y) in gpmr.c.data.iter().zip(&reference.data) {
        assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
    }

    // The GPU implementations beat the CPU baseline even at this toy
    // size. (GPMR-beats-Mars needs benchmark-scale matrices where job
    // setup amortizes — that ordering is exercised by the Table 3
    // harness, `cargo run -p gpmr-bench --bin table3_mars`.)
    assert!(gpmr.total_time.as_secs() < phoenix_t.as_secs());
    assert!(mars_t.as_secs() < phoenix_t.as_secs());
}

// ---------------------------------------------------------------------
// Golden conformance under faults: each paper app, with one GPU killed
// mid-job, must still match its sequential CPU reference — exactly for
// the integer apps, within float-accumulation tolerance for KMC/LR/MM.
// ---------------------------------------------------------------------

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Run `run` fault-free to learn the makespan, then again with rank 1
/// killed at 35% of it. Returns the faulted outcome.
fn with_mid_job_kill<T>(
    gpus: u32,
    run: impl Fn(&mut Cluster) -> (T, JobTimings),
) -> (T, JobTimings) {
    let mut clean = Cluster::accelerator(gpus, GpuSpec::gt200());
    let (_, base_t) = run(&mut clean);
    let mut faulted = Cluster::accelerator(gpus, GpuSpec::gt200());
    faulted.set_fault_plan(Some(
        FaultPlan::new().kill(1, base_t.total.as_secs() * 0.35),
    ));
    let (out, t) = run(&mut faulted);
    assert!(t.gpus_lost >= 1, "the mid-job kill never landed");
    (out, t)
}

#[test]
fn sio_with_mid_job_kill_matches_reference() {
    let data = sio::generate_integers(60_000, 21);
    let expect = sio::cpu_reference(&data);
    let (merged, t) = with_mid_job_kill(4, |cluster| {
        let r = run_job(
            cluster,
            &SioJob::default(),
            sio::sio_chunks(&data, 16 * 1024),
        )
        .expect("SIO survives the kill");
        let timings = r.timings.clone();
        (r.merged_output(), timings)
    });
    assert!(t.chunks_requeued > 0);
    assert_eq!(merged.len(), expect.len());
    for (k, v) in merged.iter() {
        assert_eq!(*v, expect[k], "key {k}");
    }
}

#[test]
fn wo_with_mid_job_kill_matches_reference() {
    let dict = Arc::new(Dictionary::generate(300, 22));
    let corpus = text::generate_text(&dict, 60_000, 23);
    let expect = wo::cpu_reference(&dict, &corpus);
    let (merged, _) = with_mid_job_kill(4, |cluster| {
        let job = WoJob::new(dict.clone(), 4);
        let r =
            run_job(cluster, &job, text::chunk_text(&corpus, 6_000)).expect("WO survives the kill");
        let timings = r.timings.clone();
        (r.merged_output(), timings)
    });
    assert_eq!(wo::counts_from_output(&dict, &merged), expect);
}

#[test]
fn kmc_with_mid_job_kill_matches_reference() {
    let centers = kmc::initial_centers(12, 24);
    let points = kmc::generate_points(50_000, 12, 25);
    let expect = kmc::cpu_reference(&centers, &points);
    let (merged, _) = with_mid_job_kill(4, |cluster| {
        let job = KmcJob::new(centers.clone());
        let r = run_job(cluster, &job, SliceChunk::split(&points, 8_192))
            .expect("KMC survives the kill");
        let timings = r.timings.clone();
        (r.merged_output(), timings)
    });
    let sums = kmc::sums_from_output(centers.len(), &merged);
    assert!(close(&sums, &expect, 1e-6), "KMC sums diverged after kill");
}

#[test]
fn lr_with_mid_job_kill_matches_reference() {
    let samples = lr::generate_samples(80_000, -0.5, 7.0, 26);
    let expect = lr::cpu_reference(&samples);
    let (merged, _) = with_mid_job_kill(4, |cluster| {
        let r = run_job(cluster, &LrJob, SliceChunk::split(&samples, 16_384))
            .expect("LR survives the kill");
        let timings = r.timings.clone();
        (r.merged_output(), timings)
    });
    let stats = lr::stats_from_output(&merged);
    assert!(close(&stats, &expect, 1e-6), "LR stats diverged after kill");
}

#[test]
fn mm_with_mid_job_kill_matches_reference() {
    let a = Matrix::random(192, 27);
    let b = Matrix::random(192, 28);
    let reference = a.multiply_reference(&b);

    let mut clean = Cluster::accelerator(4, GpuSpec::gt200());
    let base = mm::run_mm(&mut clean, &a, &b, 4, 6, 3).expect("fault-free MM");

    let mut faulted = Cluster::accelerator(4, GpuSpec::gt200());
    faulted.set_fault_plan(Some(
        FaultPlan::new().kill(1, base.total_time.as_secs() * 0.35),
    ));
    let result = mm::run_mm(&mut faulted, &a, &b, 4, 6, 3).expect("MM survives the kill");
    assert!(
        result.phase1.gpus_lost + result.phase2.gpus_lost >= 1,
        "the mid-job kill never landed"
    );
    for (i, (x, y)) in result.c.data.iter().zip(&reference.data).enumerate() {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs()),
            "element {i}: {x} vs {y}"
        );
    }
}
