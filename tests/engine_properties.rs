//! Property-based end-to-end tests: arbitrary inputs through the full
//! GPMR pipeline on arbitrary cluster shapes must match the sequential
//! reference, in every pipeline configuration.

use gpmr::apps::sio::{cpu_reference, sio_chunks, SioMode};
use gpmr::prelude::*;
use proptest::prelude::*;

fn counts_match(result: &KvSet<u32, u32>, data: &[u32]) -> Result<(), TestCaseError> {
    let expect = cpu_reference(data);
    let mut seen = std::collections::HashMap::new();
    for (k, v) in result.iter() {
        prop_assert!(seen.insert(*k, *v).is_none(), "duplicate key {}", k);
    }
    prop_assert_eq!(seen, expect);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sio_matches_reference_for_arbitrary_inputs(
        data in prop::collection::vec(0u32..10_000, 1..20_000),
        gpus in 1u32..12,
        chunk_kb in 1usize..64,
    ) {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let result = run_job(
            &mut cluster,
            &SioJob::default(),
            sio_chunks(&data, chunk_kb * 1024),
        )
        .unwrap();
        counts_match(&result.merged_output(), &data)?;
        // Timing sanity: positive makespan, stage sums consistent.
        prop_assert!(result.total_time().as_secs() > 0.0);
        for st in &result.timings.per_rank {
            prop_assert!(
                (st.total().as_secs() - result.total_time().as_secs()).abs()
                    < 1e-9 * result.total_time().as_secs().max(1.0)
            );
        }
    }

    #[test]
    fn all_pipeline_modes_agree(
        data in prop::collection::vec(0u32..500, 1..8_000),
        gpus in 1u32..6,
    ) {
        let mut outputs = Vec::new();
        for mode in [SioMode::Plain, SioMode::PartialReduce, SioMode::Combine] {
            let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
            let result = run_job(
                &mut cluster,
                &SioJob::with_mode(mode),
                sio_chunks(&data, 8 * 1024),
            )
            .unwrap();
            counts_match(&result.merged_output(), &data)?;
            let mut pairs: Vec<(u32, u32)> =
                result.merged_output().iter().map(|(k, v)| (*k, *v)).collect();
            pairs.sort_unstable();
            outputs.push(pairs);
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
        prop_assert_eq!(&outputs[0], &outputs[2]);
    }

    #[test]
    fn block_and_round_robin_partitioning_agree(
        data in prop::collection::vec(0u32..100_000, 1..10_000),
        gpus in 1u32..9,
    ) {
        let max_key = u64::from(*data.iter().max().unwrap_or(&1));
        let mut c1 = Cluster::accelerator(gpus, GpuSpec::gt200());
        let rr = run_job(&mut c1, &SioJob::default(), sio_chunks(&data, 8 * 1024)).unwrap();
        let mut c2 = Cluster::accelerator(gpus, GpuSpec::gt200());
        let blocks = run_job(
            &mut c2,
            &SioJob::default().with_block_partition(max_key),
            sio_chunks(&data, 8 * 1024),
        )
        .unwrap();
        counts_match(&rr.merged_output(), &data)?;
        counts_match(&blocks.merged_output(), &data)?;
        // Blocks keep rank outputs in disjoint ascending key ranges.
        let mut prev_max: Option<u32> = None;
        for out in &blocks.outputs {
            if out.is_empty() {
                continue;
            }
            let lo = *out.keys.iter().min().unwrap();
            let hi = *out.keys.iter().max().unwrap();
            if let Some(p) = prev_max {
                prop_assert!(lo > p, "block ranges overlap: {} <= {}", lo, p);
            }
            prev_max = Some(hi);
        }
    }
}
