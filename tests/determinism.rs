//! Execution-backend determinism: a full multi-GPU job must produce
//! bit-identical outputs AND identical simulated times no matter how many
//! host worker threads execute the kernels, and no matter whether the
//! persistent pool or the legacy spawn-per-launch backend runs them.
//! Simulated time is an integer cost model summed per block, so the
//! schedule of real host threads must never leak into results.

use std::sync::Arc;

use gpmr::apps::text::{chunk_text, generate_text};
use gpmr::prelude::*;
use gpmr::sim_gpu::{set_exec_backend, ExecBackend};

fn run_wo(workers: usize, backend: ExecBackend) -> (Vec<KvSet<u32, u32>>, gpmr::core::JobTimings) {
    set_exec_backend(backend);
    // 2 nodes x 2 GPUs, the smallest shape that exercises both intra-node
    // PCI-e sharing and inter-node network binning.
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    for rank in 0..4 {
        cluster.gpu(rank).worker_threads = workers;
    }
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let job = WoJob::new(dict, 4);
    let result = run_job(&mut cluster, &job, chunks).expect("job runs");
    set_exec_backend(ExecBackend::Pool);
    (result.outputs, result.timings)
}

#[test]
fn outputs_and_times_are_independent_of_workers_and_backend() {
    let (base_out, base_times) = run_wo(1, ExecBackend::Pool);
    assert_eq!(base_out.len(), 4, "one output set per rank");
    assert!(base_times.total > SimDuration::ZERO);

    for workers in [2, 8] {
        for backend in [ExecBackend::Pool, ExecBackend::Spawn] {
            let (out, times) = run_wo(workers, backend);
            assert_eq!(
                out, base_out,
                "outputs changed with {workers} workers on {backend:?}"
            );
            assert_eq!(
                times, base_times,
                "simulated times changed with {workers} workers on {backend:?}"
            );
        }
    }
}
