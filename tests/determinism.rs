//! Execution-backend determinism: a full multi-GPU job must produce
//! bit-identical outputs AND identical simulated times no matter how many
//! host worker threads execute the kernels, and no matter whether the
//! persistent pool or the legacy spawn-per-launch backend runs them.
//! Simulated time is an integer cost model summed per block, so the
//! schedule of real host threads must never leak into results.

use std::sync::Arc;

use gpmr::apps::text::{chunk_text, generate_text};
use gpmr::prelude::*;
use gpmr::sim_gpu::{set_exec_backend, ExecBackend, FaultPlan};

fn run_wo_faulted(
    workers: usize,
    backend: ExecBackend,
    plan: Option<FaultPlan>,
) -> (Vec<KvSet<u32, u32>>, gpmr::core::JobTimings) {
    set_exec_backend(backend);
    // 2 nodes x 2 GPUs, the smallest shape that exercises both intra-node
    // PCI-e sharing and inter-node network binning.
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    cluster.set_fault_plan(plan);
    for rank in 0..4 {
        cluster.gpu(rank).worker_threads = workers;
    }
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let job = WoJob::new(dict, 4);
    let result = run_job(&mut cluster, &job, chunks).expect("job runs");
    set_exec_backend(ExecBackend::Pool);
    (result.outputs, result.timings)
}

fn run_wo(workers: usize, backend: ExecBackend) -> (Vec<KvSet<u32, u32>>, gpmr::core::JobTimings) {
    run_wo_faulted(workers, backend, None)
}

/// The same WO job under an explicit engine tuning (upload pipeline depth
/// and transfer mode), for the tuning-matrix determinism tests.
fn run_wo_tuned(
    workers: usize,
    backend: ExecBackend,
    depth: u32,
    gpu_direct: bool,
    plan: Option<FaultPlan>,
) -> (Vec<KvSet<u32, u32>>, gpmr::core::JobTimings) {
    use gpmr::core::{run_job_tuned, EngineTuning};
    set_exec_backend(backend);
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    cluster.set_fault_plan(plan);
    for rank in 0..4 {
        cluster.gpu(rank).worker_threads = workers;
    }
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let job = WoJob::new(dict, 4);
    let tuning = EngineTuning {
        pipeline_depth: depth,
        gpu_direct,
        ..EngineTuning::default()
    };
    let result = run_job_tuned(&mut cluster, &job, chunks, &tuning).expect("job runs");
    set_exec_backend(ExecBackend::Pool);
    (result.outputs, result.timings)
}

/// The WO job journaled to `path`: same cluster/workload as
/// [`run_wo_faulted`], but every scheduling decision is written to (or
/// replayed against) the write-ahead journal.
fn run_wo_journaled(
    workers: usize,
    backend: ExecBackend,
    journal: &mut gpmr::core::Journal,
) -> (Vec<KvSet<u32, u32>>, gpmr::core::JobTimings) {
    use gpmr::core::{run_job_journaled, EngineTuning};
    set_exec_backend(backend);
    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    cluster.set_fault_plan(None);
    for rank in 0..4 {
        cluster.gpu(rank).worker_threads = workers;
    }
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let job = WoJob::new(dict, 4);
    let result = run_job_journaled(
        &mut cluster,
        &job,
        chunks,
        &EngineTuning::default(),
        &gpmr::telemetry::Telemetry::disabled(),
        journal,
    )
    .expect("journaled job runs");
    set_exec_backend(ExecBackend::Pool);
    (result.outputs, result.timings)
}

#[test]
fn outputs_and_times_are_independent_of_workers_and_backend() {
    let (base_out, base_times) = run_wo(1, ExecBackend::Pool);
    assert_eq!(base_out.len(), 4, "one output set per rank");
    assert!(base_times.total > SimDuration::ZERO);

    for workers in [2, 8] {
        for backend in [ExecBackend::Pool, ExecBackend::Spawn] {
            let (out, times) = run_wo(workers, backend);
            assert_eq!(
                out, base_out,
                "outputs changed with {workers} workers on {backend:?}"
            );
            assert_eq!(
                times, base_times,
                "simulated times changed with {workers} workers on {backend:?}"
            );
        }
    }
}

#[test]
fn fault_recovery_is_independent_of_workers_and_backend() {
    // A plan that exercises every injection path at once: a mid-job GPU
    // kill, a transient route failure, and a straggler stall. Recovery
    // (requeue targets, retry counts, migrated work) must replay
    // identically no matter which host threads execute the kernels.
    let (fault_free, fault_free_times) = run_wo(1, ExecBackend::Pool);
    let horizon = fault_free_times.total.as_secs();
    let plan = || {
        Some(
            FaultPlan::new()
                .kill(2, horizon * 0.4)
                .transfer_fail(Some(1), Some(0), 0.0, f64::INFINITY, 2)
                .stall(3, horizon * 0.2, horizon * 0.15),
        )
    };

    let (base_out, base_times) = run_wo_faulted(1, ExecBackend::Pool, plan());
    assert_eq!(
        base_out, fault_free,
        "faulted run must still compute the fault-free answer"
    );
    assert!(base_times.gpus_lost >= 1, "the kill must have landed");
    assert!(base_times.transfer_retries > 0, "retries must be visible");
    assert!(
        base_times.stalls_injected >= 1,
        "the stall must have landed"
    );

    for workers in [2, 8] {
        for backend in [ExecBackend::Pool, ExecBackend::Spawn] {
            let (out, times) = run_wo_faulted(workers, backend, plan());
            assert_eq!(
                out, base_out,
                "faulted outputs changed with {workers} workers on {backend:?}"
            );
            assert_eq!(
                times, base_times,
                "faulted times/recovery changed with {workers} workers on {backend:?}"
            );
        }
    }
}

#[test]
fn tuning_matrix_is_deterministic_and_output_invariant() {
    // Pipeline depth and transfer mode reshape the schedule, never the
    // answer: every tuning point must reproduce the default-tuning
    // outputs bit-for-bit, and within a tuning point the simulated times
    // must be identical across worker counts and execution backends.
    let (base_out, _) = run_wo(1, ExecBackend::Pool);
    for depth in [1u32, 2, 4] {
        for gpu_direct in [false, true] {
            let (out, times) = run_wo_tuned(1, ExecBackend::Pool, depth, gpu_direct, None);
            assert_eq!(
                out, base_out,
                "outputs changed at depth {depth}, gpu_direct {gpu_direct}"
            );
            for (workers, backend) in [(2, ExecBackend::Pool), (8, ExecBackend::Spawn)] {
                let (o, t) = run_wo_tuned(workers, backend, depth, gpu_direct, None);
                assert_eq!(
                    o, out,
                    "outputs changed with {workers} workers on {backend:?} \
                     at depth {depth}, gpu_direct {gpu_direct}"
                );
                assert_eq!(
                    t, times,
                    "times changed with {workers} workers on {backend:?} \
                     at depth {depth}, gpu_direct {gpu_direct}"
                );
            }
        }
    }
}

#[test]
fn tuning_matrix_survives_faults_deterministically() {
    // The corner tuning points (pipelining off / deep, host-staged /
    // GPU-direct) under the all-paths fault plan: recovery must replay
    // identically across workers and backends, and still compute the
    // fault-free answer.
    let (fault_free, fault_free_times) = run_wo(1, ExecBackend::Pool);
    let horizon = fault_free_times.total.as_secs();
    let plan = || {
        Some(
            FaultPlan::new()
                .kill(2, horizon * 0.4)
                .transfer_fail(Some(1), Some(0), 0.0, f64::INFINITY, 2)
                .stall(3, horizon * 0.2, horizon * 0.15),
        )
    };
    for (depth, gpu_direct) in [(1u32, false), (1, true), (4, false), (4, true)] {
        let (out, times) = run_wo_tuned(1, ExecBackend::Pool, depth, gpu_direct, plan());
        assert_eq!(
            out, fault_free,
            "faulted run must still compute the fault-free answer \
             at depth {depth}, gpu_direct {gpu_direct}"
        );
        assert!(times.gpus_lost >= 1, "the kill must have landed");
        let (o, t) = run_wo_tuned(8, ExecBackend::Spawn, depth, gpu_direct, plan());
        assert_eq!(
            o, out,
            "faulted outputs changed across backends at depth {depth}, \
             gpu_direct {gpu_direct}"
        );
        assert_eq!(
            t, times,
            "faulted times/recovery changed across backends at depth {depth}, \
             gpu_direct {gpu_direct}"
        );
    }
}

#[test]
fn interrupted_and_resumed_runs_match_uninterrupted_across_workers_and_backends() {
    // The resumed-run determinism axis: for every worker-count x backend
    // combination, a journaled run interrupted halfway (journal truncated
    // at a record boundary) and resumed must match the uninterrupted run
    // bit-for-bit — outputs, simulated times, and the final journal.
    use gpmr::core::{scan_bytes, Journal};

    let dir = std::env::temp_dir().join(format!("gpmr_det_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (base_out, base_times) = run_wo(1, ExecBackend::Pool);

    for workers in [1usize, 2, 8] {
        for backend in [ExecBackend::Pool, ExecBackend::Spawn] {
            let path = dir.join(format!("wo_w{workers}_{backend:?}.gpj"));

            // Uninterrupted journaled run: zero behavior change vs plain.
            let mut journal = Journal::create(&path, 1).expect("create journal");
            let (out, times) = run_wo_journaled(workers, backend, &mut journal);
            drop(journal);
            assert_eq!(
                out, base_out,
                "journaling changed outputs with {workers} workers on {backend:?}"
            );
            assert_eq!(
                times, base_times,
                "journaling changed times with {workers} workers on {backend:?}"
            );
            let reference = std::fs::read(&path).unwrap();
            let (_, offsets) = scan_bytes(&reference);

            // Interrupt halfway, resume, and demand bit-identity.
            let cut = offsets[offsets.len() / 2] as usize;
            std::fs::write(&path, &reference[..cut]).unwrap();
            let mut journal = Journal::resume(&path, 1).expect("resume journal");
            let (out, times) = run_wo_journaled(workers, backend, &mut journal);
            assert!(journal.replayed() > 0, "half the journal must replay");
            drop(journal);
            assert_eq!(
                out, base_out,
                "resumed outputs diverged with {workers} workers on {backend:?}"
            );
            assert_eq!(
                times, base_times,
                "resumed times diverged with {workers} workers on {backend:?}"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                reference,
                "resumed journal bytes diverged with {workers} workers on {backend:?}"
            );
        }
    }
}

#[test]
fn classic_wrappers_match_the_controlled_entry_point() {
    // run_job (and friends) are now thin wrappers over the controlled
    // engine entry: calling the controlled path with an unrestricted
    // control must be indistinguishable — outputs AND simulated times.
    use gpmr::core::{run_job_controlled, EngineTuning, RunControl};
    use gpmr::telemetry::Telemetry;

    let (base_out, base_times) = run_wo(1, ExecBackend::Pool);

    let mut cluster = Cluster::new(Topology::new(2, 2, 2), GpuSpec::gt200());
    let dict = Arc::new(Dictionary::generate(300, 11));
    let text = generate_text(&dict, 120_000, 12);
    let chunks = chunk_text(&text, 16 * 1024);
    let result = run_job_controlled(
        &mut cluster,
        &WoJob::new(dict, 4),
        chunks,
        &EngineTuning::default(),
        &Telemetry::disabled(),
        &RunControl::unrestricted(),
    )
    .expect("controlled run completes");
    assert_eq!(result.outputs, base_out, "controlled path changed outputs");
    assert_eq!(result.timings, base_times, "controlled path changed times");
}

#[test]
fn service_solo_jobs_match_standalone_runs_bit_for_bit() {
    // A job routed through the multi-tenant service — queueing, admission,
    // per-slot cluster, virtual-time dispatch — must produce the same
    // outputs AND the same simulated makespan as a standalone run_job.
    use gpmr::apps::sio::{generate_integers, sio_chunks};
    use gpmr::core::run_job;
    use gpmr::service::{JobKind, JobService, JobSpec, JobStatus, ServiceConfig, TenantConfig};
    use gpmr::telemetry::Telemetry;

    let cfg = ServiceConfig {
        engines: 1,
        ..ServiceConfig::default()
    };
    let mut svc = JobService::new(
        cfg,
        vec![TenantConfig::unlimited("solo")],
        Telemetry::disabled(),
    );
    let sio = svc.submit(JobSpec::new(
        "solo",
        JobKind::Sio {
            n: 40_000,
            seed: 3,
            chunk_kb: 16,
        },
    ));
    let wo = svc.submit(JobSpec::new(
        "solo",
        JobKind::Wo {
            bytes: 65_536,
            dict_words: 256,
            seed: 9,
            chunk_kb: 16,
        },
    ));
    svc.drain();

    // SIO: outputs and makespan match the standalone engine exactly.
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let data = generate_integers(40_000, 3);
    let standalone = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
    )
    .expect("standalone sio");
    assert_eq!(svc.outputs(sio).unwrap(), &standalone.outputs[..]);
    let JobStatus::Completed {
        started_s,
        finished_s,
        ..
    } = svc.poll(sio).unwrap()
    else {
        panic!("sio job should complete");
    };
    assert_eq!(
        finished_s - started_s,
        standalone.timings.total.as_secs(),
        "service must report the engine's exact simulated makespan"
    );

    // WO: same, through the text pipeline.
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let dict = Arc::new(Dictionary::generate(256, 9));
    let text = generate_text(&dict, 65_536, 10);
    let standalone = run_job(
        &mut cluster,
        &WoJob::new(dict, 4),
        chunk_text(&text, 16 * 1024),
    )
    .expect("standalone wo");
    assert_eq!(svc.outputs(wo).unwrap(), &standalone.outputs[..]);
    let JobStatus::Completed {
        started_s,
        finished_s,
        ..
    } = svc.poll(wo).unwrap()
    else {
        panic!("wo job should complete");
    };
    // The service computes finish = start + makespan; assert that exact
    // operation (subtraction would round off the last ulp).
    assert_eq!(
        finished_s,
        started_s + standalone.timings.total.as_secs(),
        "service must carry the engine's exact simulated makespan"
    );

    // And the whole service run is replay-deterministic.
    let mut svc2 = JobService::new(
        ServiceConfig {
            engines: 1,
            ..ServiceConfig::default()
        },
        vec![TenantConfig::unlimited("solo")],
        Telemetry::disabled(),
    );
    let sio2 = svc2.submit(JobSpec::new(
        "solo",
        JobKind::Sio {
            n: 40_000,
            seed: 3,
            chunk_kb: 16,
        },
    ));
    svc2.drain();
    assert_eq!(svc.outputs(sio), svc2.outputs(sio2));
    assert_eq!(svc.poll(sio).unwrap(), svc2.poll(sio2).unwrap());
}
