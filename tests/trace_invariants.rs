//! Structural invariants of execution traces: the recorded schedule must
//! be consistent with the timing result and the pipeline's ordering
//! rules.

use gpmr::core::{run_job_traced, TraceKind};
use gpmr::prelude::*;
use gpmr_apps::sio::{generate_integers, sio_chunks};
use gpmr_apps::wo;
use std::sync::Arc;

#[test]
fn trace_covers_every_stage_and_respects_the_makespan() {
    let data = generate_integers(100_000, 1);
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let (result, trace) = run_job_traced(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 32 * 1024),
    )
    .unwrap();

    // Every stage kind shows up for a full-pipeline job.
    for kind in [
        TraceKind::Setup,
        TraceKind::Upload,
        TraceKind::Map,
        TraceKind::Partition,
        TraceKind::Download,
        TraceKind::Send,
        TraceKind::Sort,
        TraceKind::Reduce,
    ] {
        assert!(
            trace.events_of(kind).count() > 0,
            "no {kind} events recorded"
        );
    }
    // One setup event per rank.
    assert_eq!(trace.events_of(TraceKind::Setup).count(), 4);

    // No event starts after it ends, and nothing ends after the makespan.
    let makespan = result.total_time().as_secs();
    for e in &trace.events {
        assert!(e.start <= e.end, "{e:?}");
        assert!(
            e.end.as_secs() <= makespan + 1e-12,
            "event ends after makespan: {e:?}"
        );
    }

    // Per rank: the first map starts no earlier than the first upload
    // ends, and sort starts after the last map ends.
    for r in 0..4 {
        let first_upload = trace
            .events_for(r)
            .find(|e| e.kind == TraceKind::Upload)
            .unwrap();
        let first_map = trace
            .events_for(r)
            .find(|e| e.kind == TraceKind::Map)
            .unwrap();
        assert!(first_map.start >= first_upload.end);

        let last_map_end = trace
            .events_for(r)
            .filter(|e| e.kind == TraceKind::Map)
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max);
        if let Some(sort) = trace.events_for(r).find(|e| e.kind == TraceKind::Sort) {
            assert!(sort.start >= last_map_end);
        }
    }
}

#[test]
fn traced_and_untraced_runs_are_identical() {
    let data = generate_integers(50_000, 2);
    let mut c1 = Cluster::accelerator(4, GpuSpec::gt200());
    let plain =
        gpmr::core::run_job(&mut c1, &SioJob::default(), sio_chunks(&data, 16 * 1024)).unwrap();
    let mut c2 = Cluster::accelerator(4, GpuSpec::gt200());
    let (traced, _) =
        run_job_traced(&mut c2, &SioJob::default(), sio_chunks(&data, 16 * 1024)).unwrap();
    assert_eq!(plain.total_time(), traced.total_time());
    assert_eq!(plain.merged_output(), traced.merged_output());
}

#[test]
fn accumulate_jobs_trace_init_and_deferred_sends() {
    let dict = Arc::new(Dictionary::generate(150, 3));
    let text = gpmr::apps::text::generate_text(&dict, 30_000, 4);
    let chunks = gpmr::apps::text::chunk_text(&text, 4_000);
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let job = WoJob::new(dict.clone(), 4);
    let (result, trace) = run_job_traced(&mut cluster, &job, chunks).unwrap();
    assert_eq!(
        wo::counts_from_output(&dict, &result.merged_output()),
        wo::cpu_reference(&dict, &text)
    );
    // One accumulate-init per rank; binning happens only after all maps.
    assert_eq!(trace.events_of(TraceKind::AccumulateInit).count(), 4);
    for r in 0..4 {
        let last_map = trace
            .events_for(r)
            .filter(|e| e.kind == TraceKind::Map)
            .map(|e| e.end)
            .fold(SimTime::ZERO, SimTime::max);
        for send in trace.events_for(r).filter(|e| e.kind == TraceKind::Send) {
            assert!(
                send.start >= last_map,
                "accumulate-mode send before maps finished"
            );
        }
    }
}

#[test]
fn gantt_renders_one_row_per_rank() {
    let data = generate_integers(30_000, 5);
    let mut cluster = Cluster::accelerator(6, GpuSpec::gt200());
    let (_, trace) = run_job_traced(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 8 * 1024),
    )
    .unwrap();
    let chart = trace.gantt(6, 72);
    let rows = chart.lines().filter(|l| l.starts_with("rank")).count();
    assert_eq!(rows, 6);
    assert!(chart.contains('M'));
    assert!(chart.contains('S'));
}
