//! Cross-crate integration: every paper benchmark, executed through the
//! public facade on multiple cluster shapes, must reproduce its
//! sequential reference bit-for-bit (or within float-accumulation
//! tolerance).

use std::sync::Arc;

use gpmr::apps::{kmc, lr, mm, sio, text, wo};
use gpmr::prelude::*;

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

#[test]
fn sio_correct_across_cluster_shapes() {
    let data = sio::generate_integers(60_000, 1);
    let expect = sio::cpu_reference(&data);
    for gpus in [1u32, 2, 4, 6, 8, 16] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let result = run_job(
            &mut cluster,
            &SioJob::default(),
            sio::sio_chunks(&data, 16 * 1024),
        )
        .unwrap();
        let merged = result.merged_output();
        assert_eq!(merged.len(), expect.len(), "{gpus} GPUs");
        for (k, v) in merged.iter() {
            assert_eq!(*v, expect[k], "key {k} on {gpus} GPUs");
        }
    }
}

#[test]
fn wo_correct_across_cluster_shapes_and_crossover() {
    let dict = Arc::new(Dictionary::generate(300, 2));
    let corpus = text::generate_text(&dict, 60_000, 3);
    let expect = wo::cpu_reference(&dict, &corpus);
    for gpus in [1u32, 4, 12] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), gpus);
        let result = run_job(&mut cluster, &job, text::chunk_text(&corpus, 6_000)).unwrap();
        assert_eq!(
            wo::counts_from_output(&dict, &result.merged_output()),
            expect,
            "{gpus} GPUs"
        );
    }
}

#[test]
fn kmc_correct_across_cluster_shapes() {
    let centers = kmc::initial_centers(12, 4);
    let points = kmc::generate_points(50_000, 12, 5);
    let expect = kmc::cpu_reference(&centers, &points);
    for gpus in [1u32, 3, 8] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let job = KmcJob::new(centers.clone());
        let chunks = SliceChunk::split(&points, 8_192);
        let result = run_job(&mut cluster, &job, chunks).unwrap();
        let sums = kmc::sums_from_output(centers.len(), &result.merged_output());
        assert!(close(&sums, &expect, 1e-6), "{gpus} GPUs");
    }
}

#[test]
fn lr_correct_and_recovers_model() {
    let samples = lr::generate_samples(80_000, -0.5, 7.0, 6);
    let expect = lr::cpu_reference(&samples);
    for gpus in [1u32, 5, 16] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let chunks = SliceChunk::split(&samples, 16_384);
        let result = run_job(&mut cluster, &LrJob, chunks).unwrap();
        let stats = lr::stats_from_output(&result.merged_output());
        assert!(close(&stats, &expect, 1e-6), "{gpus} GPUs");
        let model = lr::model_from_stats(&stats);
        assert!((model.slope + 0.5).abs() < 0.02);
        assert!((model.intercept - 7.0).abs() < 0.05);
    }
}

#[test]
fn mm_correct_across_cluster_shapes() {
    let a = Matrix::random(192, 7);
    let b = Matrix::random(192, 8);
    let reference = a.multiply_reference(&b);
    for gpus in [1u32, 2, 6] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let result = mm::run_mm(&mut cluster, &a, &b, 4, 6, 3).unwrap();
        for (i, (x, y)) in result.c.data.iter().zip(&reference.data).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs()),
                "{gpus} GPUs, element {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn facade_prelude_covers_the_quickstart_path() {
    // The prelude alone must be enough to build and run a job.
    let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
    let data: Vec<u32> = (0..10_000).map(|i| i % 7).collect();
    let chunks = SliceChunk::split(&data, 2048);
    let result = run_job(&mut cluster, &SioJob::default(), chunks).unwrap();
    assert_eq!(result.merged_output().len(), 7);
    assert!(result.total_time().as_secs() > 0.0);
}
