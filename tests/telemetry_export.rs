//! Acceptance tests for the telemetry subsystem, end to end: run an
//! instrumented (and faulted) job, export the recording, and assert
//! structural properties —
//!
//! * every dispatched chunk owns a container span whose children cover
//!   the upload → map → download lifecycle, linked by parent span ids;
//! * recovery work appears as counter increments that reconcile exactly
//!   with [`JobTimings`] (also as a property over generated fault plans);
//! * the Perfetto export passes the structural validator and the JSONL
//!   stream round-trips losslessly.

use gpmr::core::{run_job_instrumented, EngineTuning, JobTimings};
use gpmr::prelude::*;
use gpmr::sim_gpu::FaultPlan;
use gpmr::telemetry::{export, Telemetry, TelemetrySnapshot};
use gpmr_apps::sio::{self, sio_chunks};
use proptest::prelude::*;

const RANKS: u32 = 4;

/// Run the SIO job instrumented under `plan`; returns the recording and
/// the engine's own accounting.
fn run_instrumented(plan: Option<FaultPlan>) -> (TelemetrySnapshot, JobTimings) {
    let data = sio::generate_integers(80_000, 11);
    let mut cluster = Cluster::accelerator(RANKS, GpuSpec::gt200());
    cluster.set_fault_plan(plan);
    let tel = Telemetry::enabled();
    let result = run_job_instrumented(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 16 * 1024),
        &EngineTuning::default(),
        &tel,
    )
    .expect("job should survive");
    (tel.snapshot(), result.timings)
}

#[test]
fn every_chunk_has_upload_map_download_spans() {
    let (snap, timings) = run_instrumented(None);
    let chunks: Vec<_> = snap.spans_of("Chunk").collect();
    let dispatched: u32 = timings.chunks_per_rank.iter().sum();
    assert_eq!(chunks.len() as u32, dispatched, "one container per chunk");
    assert_eq!(
        snap.metrics.counter("engine.chunks_dispatched"),
        u64::from(dispatched)
    );

    for chunk in &chunks {
        let kinds: Vec<&str> = snap
            .spans
            .iter()
            .filter(|s| s.parent == Some(chunk.id))
            .map(|s| s.kind.as_str())
            .collect();
        for stage in ["Upload", "Map", "Download"] {
            assert!(
                kinds.contains(&stage),
                "chunk span {} ({:?}) missing {stage} child; children: {kinds:?}",
                chunk.id,
                chunk.name,
            );
        }
        // Children stay inside the container's window.
        for s in snap.spans.iter().filter(|s| s.parent == Some(chunk.id)) {
            assert!(
                s.start_s >= chunk.start_s - 1e-12,
                "{}: starts early",
                s.kind
            );
            assert!(s.end_s <= chunk.end_s + 1e-12, "{}: ends late", s.kind);
        }
    }
}

#[test]
fn retries_appear_as_counter_increments() {
    let plan = FaultPlan::parse("xfail:0->1@0..1*2").expect("plan parses");
    let (snap, timings) = run_instrumented(Some(plan));
    assert!(timings.transfer_retries > 0, "plan should force retries");
    assert_eq!(
        snap.metrics.counter("engine.transfer_retries"),
        u64::from(timings.transfer_retries)
    );
    assert_eq!(
        snap.spans_of("Retry").count() as u32,
        timings.transfer_retries
    );
    // The fabric saw the same injected failures.
    assert_eq!(
        snap.metrics.counter("fabric.faults_injected"),
        u64::from(timings.transfer_retries)
    );
}

/// Accumulate-mode jobs (WO) fold map emissions into device state, so
/// pair accounting happens when the accumulator is committed for binning —
/// the `engine.pairs_emitted` counter must not stay at zero there (it did,
/// while `engine.pairs_shuffled` counted; see BENCH_PR1's
/// `telemetry_small_wo_4rank`).
#[test]
fn accumulate_mode_reports_emitted_pairs() {
    use gpmr_apps::text::{chunk_text, generate_text, Dictionary};
    use gpmr_apps::wo::WoJob;
    use std::sync::Arc;

    let dict = Arc::new(Dictionary::generate(256, 11));
    let text = generate_text(&dict, 200_000, 12);
    let mut cluster = Cluster::accelerator(RANKS, GpuSpec::gt200());
    let tel = Telemetry::enabled();
    let result = run_job_instrumented(
        &mut cluster,
        &WoJob::new(Arc::clone(&dict), RANKS),
        chunk_text(&text, 32 * 1024),
        &EngineTuning::default(),
        &tel,
    )
    .expect("WO job runs");
    let snap = tel.snapshot();
    let emitted = snap.metrics.counter("engine.pairs_emitted");
    let shuffled = snap.metrics.counter("engine.pairs_shuffled");
    assert!(emitted > 0, "accumulate-mode pairs_emitted stuck at 0");
    assert!(
        emitted >= shuffled,
        "emitted {emitted} < shuffled {shuffled}: pairs cannot appear in the shuffle \
         that were never emitted by a map stage"
    );
    assert_eq!(emitted, result.timings.pairs_emitted);
}

#[test]
fn perfetto_export_is_structurally_valid() {
    let (snap, _) = run_instrumented(Some(FaultPlan::parse("kill:1@1e-3").unwrap()));
    let json = export::to_perfetto_json(&snap);
    let stats = export::validate_perfetto(&json).expect("valid Perfetto JSON");
    assert_eq!(stats.complete_events, snap.spans.len());
    assert_eq!(stats.counter_events, snap.samples.len());
    // Every rank track plus one NIC track per node is named.
    assert!(stats.named_tracks > RANKS as usize, "{stats:?}");
    assert!(stats.end_ts_us > 0.0);
}

#[test]
fn jsonl_stream_round_trips() {
    let (snap, _) = run_instrumented(None);
    let jsonl = export::to_jsonl(&snap);
    let back = export::snapshot_from_jsonl(&jsonl).expect("stream parses");
    assert_eq!(back.spans.len(), snap.spans.len());
    assert_eq!(back.samples.len(), snap.samples.len());
    assert_eq!(back.tracks, snap.tracks);
    assert_eq!(
        back.metrics.counter("engine.chunks_dispatched"),
        snap.metrics.counter("engine.chunks_dispatched")
    );
    // Span identity survives: same ids, kinds, parents, times.
    for (a, b) in snap.spans.iter().zip(&back.spans) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.start_s.to_bits(), b.start_s.to_bits());
        assert_eq!(a.end_s.to_bits(), b.end_s.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Telemetry counters reconcile exactly with the engine's JobTimings
    /// accounting on arbitrary generated fault plans (the plans always
    /// leave at least one GPU alive, so the job must complete).
    #[test]
    fn counters_reconcile_with_job_timings_on_faulted_runs(seed in 0u64..2000) {
        let plan = FaultPlan::generate(seed, RANKS, 10e-3);
        let (snap, timings) = run_instrumented(Some(plan));
        let m = &snap.metrics;
        prop_assert_eq!(m.counter("engine.gpus_lost"), u64::from(timings.gpus_lost));
        prop_assert_eq!(
            m.counter("engine.chunks_requeued"),
            u64::from(timings.chunks_requeued)
        );
        prop_assert_eq!(
            m.counter("engine.transfer_retries"),
            u64::from(timings.transfer_retries)
        );
        prop_assert_eq!(
            m.counter("engine.stalls_injected"),
            u64::from(timings.stalls_injected)
        );
        prop_assert_eq!(m.counter("engine.chunks_stolen"), u64::from(timings.chunks_stolen));
        prop_assert_eq!(m.counter("engine.pairs_emitted"), timings.pairs_emitted);
        prop_assert_eq!(m.counter("engine.pairs_shuffled"), timings.pairs_shuffled);
        // A pair can only reach the shuffle after a map stage emitted it.
        prop_assert!(timings.pairs_emitted >= timings.pairs_shuffled);
        prop_assert!(timings.pairs_emitted > 0);
        // Span counts for fault events match too.
        prop_assert_eq!(snap.spans_of("GpuLost").count() as u32, timings.gpus_lost);
        prop_assert_eq!(snap.spans_of("Requeue").count() as u32, timings.chunks_requeued);
        prop_assert_eq!(snap.spans_of("Stall").count() as u32, timings.stalls_injected);
    }
}

#[test]
fn service_telemetry_has_tenant_tracks_queue_wait_and_valid_perfetto() {
    // The multi-tenant service run: per-tenant Perfetto tracks, QueueWait
    // spans attributed to the waiting tenant, a queue-depth gauge, and an
    // analyze() report that treats queue-wait as a stage of its own.
    use gpmr::service::{run_script, ServiceConfig};
    use gpmr::telemetry::analyze;

    let script = include_str!("../workloads/service_demo.wl");
    let (svc, _report) = run_script(script, ServiceConfig::default(), Telemetry::enabled())
        .expect("demo workload runs");
    let snap = svc.telemetry().snapshot();

    // One named track per tenant, plus the service's own track.
    let track_names: Vec<&str> = snap.tracks.values().map(String::as_str).collect();
    for expected in ["tenant alice", "tenant bob", "tenant carol", "service"] {
        assert!(
            track_names.contains(&expected),
            "missing track {expected:?} in {track_names:?}"
        );
    }

    // Every admitted job contributes a QueueWait span and a Job span on
    // its tenant's track (rejected jobs never reach a track).
    let tenant_tracks: Vec<u32> = snap
        .tracks
        .iter()
        .filter(|(_, name)| name.starts_with("tenant "))
        .map(|(id, _)| *id)
        .collect();
    let queue_waits: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.kind == "QueueWait")
        .collect();
    let jobs: Vec<_> = snap.spans.iter().filter(|s| s.kind == "Job").collect();
    // One per finalized job: 8 admitted minus job5, which stays queued
    // forever (budget-starved) and so never finalizes.
    assert!(queue_waits.len() >= 7, "one QueueWait per finalized job");
    assert_eq!(queue_waits.len(), jobs.len());
    for s in queue_waits.iter().chain(&jobs) {
        assert!(
            tenant_tracks.contains(&s.track),
            "span {:?} not on a tenant track",
            s.kind
        );
        assert!(s.end_s >= s.start_s);
    }
    // Job spans carry their outcome, and both batch members say so.
    let outcomes: Vec<&str> = jobs.iter().filter_map(|s| s.attr("outcome")).collect();
    assert!(outcomes.contains(&"cancelled"));
    assert!(outcomes.contains(&"deadline-missed"));
    assert!(outcomes.iter().filter(|o| **o == "completed").count() >= 5);

    // Queue-depth gauge was sampled on the service track.
    assert!(
        snap.samples
            .iter()
            .any(|s| s.series == "service.queue_depth"),
        "queue-depth gauge never sampled"
    );

    // The whole trace exports as structurally valid Perfetto JSON.
    let perfetto = export::to_perfetto_json(&snap);
    let stats = export::validate_perfetto(&perfetto).expect("valid perfetto trace");
    assert!(stats.complete_events > 0 && stats.counter_events > 0);
    assert!(
        stats.named_tracks >= 4,
        "tenant + service tracks must be named"
    );

    // analyze() attributes queue wait as a distinct stage with nonzero
    // share: multi-tenant contention is visible in the stage breakdown.
    let analysis = analyze::analyze(&snap);
    let shares = analysis.stage_shares();
    let queue_share = shares
        .iter()
        .find(|(stage, _, _)| stage.name() == "QueueWait")
        .map(|(_, _, share)| *share)
        .expect("QueueWait missing from stage breakdown");
    assert!(
        queue_share > 0.0,
        "demo workload queues jobs, so queue wait share must be > 0"
    );
}
