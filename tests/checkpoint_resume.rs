//! Crash-point / replay matrix for the write-ahead job journal.
//!
//! The contract under test: a `gpmr` run journaled to disk and killed at
//! **any** point — after any record, or mid-record through a torn write —
//! resumes to a job that finishes **bit-identically** to the
//! uninterrupted run: same outputs, same simulated timings, and the same
//! final journal bytes. Resume is verified deterministic replay: the
//! engine re-executes from scratch while the journal checks every
//! would-be record against the stored prefix, so a journal written by a
//! *different* job (other data, other cluster shape) aborts with a typed
//! divergence error instead of silently replaying garbage.

use std::path::PathBuf;
use std::sync::OnceLock;

use gpmr::core::journal::{scan_bytes, Journal, JournalError, JournalRecord};
use gpmr::core::{run_job_journaled, EngineError, EngineTuning, JobTimings};
use gpmr::prelude::*;
use gpmr::sim_gpu::FaultPlan;
use gpmr::telemetry::Telemetry;
use gpmr_apps::sio::{self, sio_chunks};
use proptest::prelude::*;

const DATA_N: usize = 12_000;
const DATA_SEED: u64 = 7;

/// Unique scratch path per test (tests run concurrently in one binary).
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpmr_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.gpj"))
}

fn cluster(ranks: u32, plan: &Option<FaultPlan>) -> Cluster {
    let mut cl = Cluster::accelerator(ranks, GpuSpec::gt200());
    cl.set_fault_plan(plan.clone());
    cl
}

fn tuning(gpu_direct: bool) -> EngineTuning {
    EngineTuning {
        gpu_direct,
        ..EngineTuning::default()
    }
}

/// One journaled SIO run (integer-exact, so outputs are bit-comparable).
fn run_journaled(
    ranks: u32,
    gpu_direct: bool,
    plan: &Option<FaultPlan>,
    seed: u64,
    journal: &mut Journal,
) -> Result<(Vec<KvSet<u32, u32>>, JobTimings), EngineError> {
    let data = sio::generate_integers(DATA_N, seed);
    let mut cl = cluster(ranks, plan);
    let result = run_job_journaled(
        &mut cl,
        &SioJob::default(),
        sio_chunks(&data, 2 * 1024),
        &tuning(gpu_direct),
        &Telemetry::disabled(),
        journal,
    )?;
    Ok((result.outputs, result.timings))
}

/// Everything an uninterrupted journaled run leaves behind.
struct Reference {
    outputs: Vec<KvSet<u32, u32>>,
    timings: JobTimings,
    bytes: Vec<u8>,
    /// Byte offset of each record boundary, `[0, .., bytes.len()]`.
    offsets: Vec<u64>,
}

fn record_reference(
    path: &PathBuf,
    ranks: u32,
    gpu_direct: bool,
    plan: &Option<FaultPlan>,
    every: u32,
) -> Reference {
    let mut journal = Journal::create(path, every).expect("create journal");
    let (outputs, timings) =
        run_journaled(ranks, gpu_direct, plan, DATA_SEED, &mut journal).expect("reference run");
    drop(journal);
    let bytes = std::fs::read(path).unwrap();
    let (records, offsets) = scan_bytes(&bytes);
    assert!(
        matches!(records.first(), Some(JournalRecord::JobStart { .. })),
        "journal must open with JobStart"
    );
    assert!(
        matches!(records.last(), Some(JournalRecord::JobEnd { .. })),
        "journal must close with JobEnd"
    );
    assert_eq!(
        *offsets.last().unwrap() as usize,
        bytes.len(),
        "reference journal has no torn tail"
    );
    Reference {
        outputs,
        timings,
        bytes,
        offsets,
    }
}

/// Crash the reference journal at byte `cut`, resume, and assert the
/// finished job is bit-identical to the uninterrupted run — outputs,
/// timings, and the re-grown journal bytes.
fn crash_and_resume(
    path: &PathBuf,
    reference: &Reference,
    cut: usize,
    ranks: u32,
    gd: bool,
    plan: &Option<FaultPlan>,
) {
    std::fs::write(path, &reference.bytes[..cut]).unwrap();
    let mut journal = Journal::resume(path, 1).expect("resume after crash");
    let (outputs, timings) =
        run_journaled(ranks, gd, plan, DATA_SEED, &mut journal).expect("resumed run completes");
    let replayed = journal.replayed();
    drop(journal);
    assert_eq!(
        outputs, reference.outputs,
        "outputs diverged resuming from byte {cut}"
    );
    assert_eq!(
        timings, reference.timings,
        "timings diverged resuming from byte {cut}"
    );
    assert_eq!(
        std::fs::read(path).unwrap(),
        reference.bytes,
        "re-grown journal differs after a crash at byte {cut}"
    );
    assert!(
        (replayed as usize) < reference.offsets.len(),
        "replayed more records than the journal holds"
    );
}

#[test]
fn resume_from_every_record_boundary_is_bit_identical() {
    // Canonical config: 2 ranks, host-staged transfers, a mid-job kill so
    // the journal carries the full record vocabulary (loss, requeue,
    // steal, dispatch, commit, bins).
    let path = tmp("every_boundary");
    let plan = Some(FaultPlan::new().kill(1, 5e-4));
    let reference = record_reference(&path, 2, false, &plan, 1);
    assert!(
        reference.timings.gpus_lost == 1,
        "the kill must land mid-job for this matrix to mean anything"
    );
    for (i, &off) in reference.offsets.iter().enumerate() {
        std::fs::write(&path, &reference.bytes[..off as usize]).unwrap();
        let mut journal = Journal::resume(&path, 1).expect("resume");
        let (outputs, timings) = run_journaled(2, false, &plan, DATA_SEED, &mut journal)
            .unwrap_or_else(|e| panic!("resume from record boundary {i} failed: {e}"));
        assert_eq!(
            journal.replayed(),
            i as u64,
            "replay length at boundary {i}"
        );
        assert_eq!(journal.torn_bytes(), 0, "boundary cut has no torn bytes");
        drop(journal);
        assert_eq!(
            outputs, reference.outputs,
            "outputs diverged at boundary {i}"
        );
        assert_eq!(
            timings, reference.timings,
            "timings diverged at boundary {i}"
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference.bytes,
            "journal bytes diverged at boundary {i}"
        );
    }
}

#[test]
fn crash_point_matrix_across_ranks_and_transfer_modes() {
    // {1, 2, 8} ranks x {host-staged, GPU-direct} x {fault-free, killed}.
    // Boundaries are sampled (ends, thirds, halves) — the exhaustive walk
    // lives in `resume_from_every_record_boundary_is_bit_identical`.
    for ranks in [1u32, 2, 8] {
        for gd in [false, true] {
            let plans: Vec<Option<FaultPlan>> = if ranks >= 2 {
                vec![None, Some(FaultPlan::new().kill(1, 3e-4))]
            } else {
                vec![None]
            };
            for (pi, plan) in plans.iter().enumerate() {
                let path = tmp(&format!("matrix_r{ranks}_gd{gd}_p{pi}"));
                let reference = record_reference(&path, ranks, gd, plan, 1);
                let n = reference.offsets.len();
                let picks = [0, 1, n / 3, n / 2, 2 * n / 3, n - 2, n - 1];
                for &i in picks.iter().filter(|&&i| i < n) {
                    crash_and_resume(
                        &path,
                        &reference,
                        reference.offsets[i] as usize,
                        ranks,
                        gd,
                        plan,
                    );
                }
            }
        }
    }
}

#[test]
fn elastic_add_plans_resume_bit_identically() {
    // A journaled job on a 3-GPU cluster where the third GPU joins
    // mid-run: the GpuAdded and Steal records replay like any others.
    let path = tmp("elastic_resume");
    let plan = Some(FaultPlan::new().add(2, 2e-4));
    let reference = record_reference(&path, 3, false, &plan, 1);
    assert_eq!(reference.timings.gpus_added, 1, "the add must land");
    let n = reference.offsets.len();
    for &i in &[1, n / 2, n - 2] {
        crash_and_resume(
            &path,
            &reference,
            reference.offsets[i] as usize,
            3,
            false,
            &plan,
        );
    }
}

#[test]
fn buffered_checkpoints_lose_only_unflushed_records() {
    // checkpoint-every 8 buffers non-barrier records: a crash loses at
    // most the buffered tail, and resume still converges to the same
    // final journal (the reference, written with the same cadence).
    let path = tmp("buffered");
    let reference = record_reference(&path, 2, false, &None, 8);
    let every1 = {
        let path1 = tmp("buffered_every1");
        record_reference(&path1, 2, false, &None, 1)
    };
    // Flush cadence never changes the records, outputs, or timings —
    // only when they hit the disk.
    assert_eq!(reference.bytes, every1.bytes);
    assert_eq!(reference.outputs, every1.outputs);
    assert_eq!(reference.timings, every1.timings);
    let n = reference.offsets.len();
    for &i in &[n / 4, n / 2, n - 2] {
        std::fs::write(&path, &reference.bytes[..reference.offsets[i] as usize]).unwrap();
        let mut journal = Journal::resume(&path, 8).expect("resume");
        let (outputs, timings) =
            run_journaled(2, false, &None, DATA_SEED, &mut journal).expect("resumed run");
        drop(journal);
        assert_eq!(outputs, reference.outputs);
        assert_eq!(timings, reference.timings);
        assert_eq!(std::fs::read(&path).unwrap(), reference.bytes);
    }
}

#[test]
fn resuming_someone_elses_journal_diverges_with_a_typed_error() {
    let path = tmp("diverge");
    let plan = None;
    let reference = record_reference(&path, 2, false, &plan, 1);
    assert!(!reference.bytes.is_empty());

    // Same journal, different cluster shape: the JobStart fingerprint
    // catches it on record 0.
    let mut journal = Journal::resume(&path, 1).unwrap();
    let err = run_journaled(4, false, &plan, DATA_SEED, &mut journal)
        .expect_err("a 4-rank resume of a 2-rank journal must diverge");
    assert!(
        matches!(
            err,
            EngineError::Journal(JournalError::Diverged { index: 0, .. })
        ),
        "{err}"
    );

    // Same shape, different input data: ditto.
    let mut journal = Journal::resume(&path, 1).unwrap();
    let err = run_journaled(2, false, &plan, DATA_SEED + 1, &mut journal)
        .expect_err("a resume over different data must diverge");
    assert!(
        matches!(
            err,
            EngineError::Journal(JournalError::Diverged { index: 0, .. })
        ),
        "{err}"
    );

    // GPU-direct reshapes the schedule: fingerprint divergence again.
    let mut journal = Journal::resume(&path, 1).unwrap();
    let err = run_journaled(2, true, &plan, DATA_SEED, &mut journal)
        .expect_err("a resume under a different transfer mode must diverge");
    assert!(
        matches!(err, EngineError::Journal(JournalError::Diverged { .. })),
        "{err}"
    );
}

#[test]
fn corrupt_byte_mid_journal_self_heals_by_truncating_there() {
    // A flipped byte fails the frame checksum: everything from that frame
    // on is a torn tail. Resume replays the intact prefix and re-appends
    // the rest, converging on the reference bytes.
    let path = tmp("tamper");
    let reference = record_reference(&path, 2, false, &None, 1);
    let mut tampered = reference.bytes.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x5a;
    std::fs::write(&path, &tampered).unwrap();

    let mut journal = Journal::resume(&path, 1).expect("tampered journal still resumes");
    let (outputs, timings) =
        run_journaled(2, false, &None, DATA_SEED, &mut journal).expect("resumed run");
    let replayed = journal.replayed();
    drop(journal);
    assert!(
        (replayed as usize) < reference.offsets.len() - 1,
        "corruption must shorten the replay prefix"
    );
    assert_eq!(outputs, reference.outputs);
    assert_eq!(timings, reference.timings);
    assert_eq!(std::fs::read(&path).unwrap(), reference.bytes);
}

#[test]
fn resume_on_an_empty_journal_is_a_fresh_run() {
    let path = tmp("empty");
    let reference = record_reference(&path, 2, false, &None, 1);
    std::fs::write(&path, b"").unwrap();
    let mut journal = Journal::resume(&path, 1).expect("empty journal resumes");
    let (outputs, timings) =
        run_journaled(2, false, &None, DATA_SEED, &mut journal).expect("fresh run");
    assert_eq!(journal.replayed(), 0);
    drop(journal);
    assert_eq!(outputs, reference.outputs);
    assert_eq!(timings, reference.timings);
    assert_eq!(std::fs::read(&path).unwrap(), reference.bytes);
}

/// Shared reference for the proptest below (recording it once keeps the
/// 32 cases cheap). The fault plan exercises loss/requeue records too.
fn torn_reference() -> &'static (PathBuf, Reference) {
    static REF: OnceLock<(PathBuf, Reference)> = OnceLock::new();
    REF.get_or_init(|| {
        let path = tmp("torn_prop_ref");
        let plan = Some(FaultPlan::new().kill(1, 5e-4));
        let reference = record_reference(&path, 2, false, &plan, 1);
        (path, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truncating the journal at ANY byte offset — record boundaries and
    /// torn mid-record writes alike — must resume to a bit-identical job.
    #[test]
    fn torn_writes_at_any_byte_offset_self_heal(cut_sel in any::<u64>()) {
        let (_, reference) = torn_reference();
        let plan = Some(FaultPlan::new().kill(1, 5e-4));
        let cut = (cut_sel % reference.bytes.len() as u64) as usize;
        // Each case gets its own file: proptest cases share the process.
        let path = tmp(&format!("torn_prop_{cut}"));
        std::fs::write(&path, &reference.bytes[..cut]).unwrap();

        let mut journal = Journal::resume(&path, 1).expect("torn journal resumes");
        let at_boundary = reference.offsets.iter().any(|&o| o as usize == cut);
        prop_assert_eq!(
            journal.torn_bytes() > 0,
            !at_boundary,
            "torn byte accounting wrong for cut {}", cut
        );
        let (outputs, timings) =
            run_journaled(2, false, &plan, DATA_SEED, &mut journal).expect("resumed run");
        drop(journal);
        prop_assert_eq!(&outputs, &reference.outputs, "outputs diverged at cut {}", cut);
        prop_assert_eq!(&timings, &reference.timings, "timings diverged at cut {}", cut);
        prop_assert_eq!(
            &std::fs::read(&path).unwrap(),
            &reference.bytes,
            "journal bytes diverged at cut {}", cut
        );
        std::fs::remove_file(&path).ok();
    }
}
