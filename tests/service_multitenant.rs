//! Multi-tenant job-service suite: the acceptance workload (cancel, GPU
//! kill, batching, budget starvation, deadline miss, typed rejections),
//! bit-identity of every service-completed output against a standalone
//! `run_job` run, quota/fairness properties under arbitrary submission
//! interleavings, and a seeded chaos test mixing kills, stalls, journals,
//! deadlines, and cancels.

use std::sync::Arc;

use gpmr::apps::sio::{generate_integers, sio_chunks};
use gpmr::apps::text::{chunk_text, generate_text, Dictionary};
use gpmr::apps::{SioJob, WoJob};
use gpmr::core::{run_job, KvSet};
use gpmr::service::{
    run_script, JobId, JobKind, JobService, JobSpec, JobStatus, RejectReason, ServiceConfig,
    TenantConfig,
};
use gpmr::sim_gpu::{FaultPlan, GpuSpec};
use gpmr::sim_net::Cluster;
use gpmr::telemetry::Telemetry;
use proptest::prelude::*;

const DEMO: &str = include_str!("../workloads/service_demo.wl");

/// Run a spec exactly as a standalone `run_job` user would: fresh
/// cluster, same deterministic input, same fault plan.
fn standalone_outputs(spec: &JobSpec, gpus: u32) -> Vec<KvSet<u32, u32>> {
    let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
    let mut plan: Option<FaultPlan> = None;
    if let Some((rank, at_s)) = spec.kill {
        plan = Some(plan.unwrap_or_default().kill(rank, at_s));
    }
    if let Some((rank, at_s, dur_s)) = spec.stall {
        plan = Some(plan.unwrap_or_default().stall(rank, at_s, dur_s));
    }
    cluster.set_fault_plan(plan);
    match spec.kind {
        JobKind::Sio { n, seed, chunk_kb } => {
            let data = generate_integers(n, seed);
            let chunks = sio_chunks(&data, chunk_kb * 1024);
            run_job(&mut cluster, &SioJob::default(), chunks)
                .expect("standalone sio")
                .outputs
        }
        JobKind::Wo {
            bytes,
            dict_words,
            seed,
            chunk_kb,
        } => {
            let dict = Arc::new(Dictionary::generate(dict_words, seed));
            let text = generate_text(&dict, bytes, seed + 1);
            let chunks = chunk_text(&text, chunk_kb * 1024);
            run_job(&mut cluster, &WoJob::new(dict, gpus), chunks)
                .expect("standalone wo")
                .outputs
        }
    }
}

/// How many chunks a spec's input splits into.
fn chunk_count(spec: &JobSpec) -> u32 {
    match spec.kind {
        JobKind::Sio { n, seed, chunk_kb } => {
            sio_chunks(&generate_integers(n, seed), chunk_kb * 1024).len() as u32
        }
        JobKind::Wo {
            bytes,
            dict_words,
            seed,
            chunk_kb,
        } => {
            let dict = Dictionary::generate(dict_words, seed);
            let text = generate_text(&dict, bytes, seed + 1);
            chunk_text(&text, chunk_kb * 1024).len() as u32
        }
    }
}

/// Assert a service job's stored outputs equal a standalone run's,
/// per-rank and bit-for-bit.
fn assert_outputs_match_standalone(svc: &JobService, id: JobId, gpus: u32) {
    let spec = svc.spec(id).expect("known job").clone();
    let standalone = standalone_outputs(&spec, gpus);
    let service = svc.outputs(id).expect("completed job has outputs");
    assert_eq!(
        service,
        &standalone[..],
        "{id} service outputs differ from standalone run_job"
    );
}

// --- the acceptance workload ---------------------------------------------

#[test]
fn demo_workload_hits_every_service_feature() {
    let (svc, report) =
        run_script(DEMO, ServiceConfig::default(), Telemetry::enabled()).expect("script runs");

    // job1: explicit mid-flight cancel, with the engine's conservation
    // accounting (committed + released covers the whole 15-chunk input).
    let s1 = svc.poll(JobId(1)).expect("job1");
    let JobStatus::Cancelled {
        chunks_committed,
        chunks_released,
        ..
    } = s1
    else {
        panic!("job1 should be cancelled, got {s1:?}");
    };
    assert_eq!(
        chunks_committed + chunks_released,
        chunk_count(svc.spec(JobId(1)).unwrap()),
        "cancel must account for every chunk"
    );
    assert!(
        chunks_released > 0,
        "a mid-flight cancel releases queued chunks"
    );

    // job3 + job4: batched into ONE cluster pass, visible in telemetry.
    for id in [JobId(3), JobId(4)] {
        let s = svc.poll(id).expect("batched job");
        assert!(
            matches!(s, JobStatus::Completed { batched: true, .. }),
            "{id} should complete batched, got {s:?}"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.batches_formed, 1);
    assert_eq!(stats.batched_jobs, 2);
    assert_eq!(svc.telemetry().counter("service.batches_formed").get(), 1);
    assert_eq!(svc.telemetry().counter("service.batched_jobs").get(), 2);

    // job5: bob's budget is exhausted by job2, so his queued job is
    // never dispatched — queued, not run, not rejected.
    assert_eq!(svc.poll(JobId(5)).expect("job5"), JobStatus::Queued);
    assert!(
        svc.tenant_spent("bob").unwrap() >= 0.005,
        "bob must actually be over budget"
    );

    // job6: missed its deadline mid-flight — the typed error carries the
    // deadline instant and conservation accounting.
    let s6 = svc.poll(JobId(6)).expect("job6");
    let JobStatus::DeadlineMissed {
        deadline_s,
        chunks_committed,
        chunks_released,
    } = s6
    else {
        panic!("job6 should be deadline-missed, got {s6:?}");
    };
    assert!((deadline_s - 0.0026).abs() < 1e-12);
    assert_eq!(
        chunks_committed + chunks_released,
        chunk_count(svc.spec(JobId(6)).unwrap())
    );

    // job7: lost GPU 1 mid-job and recovered to completion.
    assert!(matches!(
        svc.poll(JobId(7)).expect("job7"),
        JobStatus::Completed { .. }
    ));

    // Typed admission rejections.
    assert!(matches!(
        svc.poll(JobId(9)).expect("job9"),
        JobStatus::Rejected(RejectReason::UnknownTenant)
    ));
    assert!(matches!(
        svc.poll(JobId(10)).expect("job10"),
        JobStatus::Rejected(RejectReason::MemoryExceeded { .. })
    ));

    // Every completed job's outputs — including both batch members and
    // the kill-recovered job — are bit-identical to standalone runs.
    let mut completed = 0;
    for id in svc.job_ids().collect::<Vec<_>>() {
        if matches!(svc.poll(id), Ok(JobStatus::Completed { .. })) {
            assert_outputs_match_standalone(&svc, id, 4);
            completed += 1;
        }
    }
    assert!(completed >= 5, "demo should complete at least 5 jobs");

    // The report names every job.
    for id in svc.job_ids().collect::<Vec<_>>() {
        assert!(
            report.iter().any(|l| l.starts_with(&id.to_string())),
            "report missing a line for {id}"
        );
    }
}

// --- targeted behaviors --------------------------------------------------

#[test]
fn batching_requires_a_busy_pool_and_merges_compatible_jobs() {
    let cfg = ServiceConfig {
        engines: 1,
        ..ServiceConfig::default()
    };
    let mut svc = JobService::new(
        cfg,
        vec![TenantConfig::unlimited("t")],
        Telemetry::disabled(),
    );
    let blocker = svc.submit(JobSpec::new(
        "t",
        JobKind::Sio {
            n: 30_000,
            seed: 1,
            chunk_kb: 16,
        },
    ));
    let mut small = |seed| {
        let mut s = JobSpec::new(
            "t",
            JobKind::Sio {
                n: 5_000,
                seed,
                chunk_kb: 8,
            },
        );
        s.batchable = true;
        svc.submit(s)
    };
    let a = small(2);
    let b = small(3);
    let c = small(4);
    svc.drain();
    assert!(matches!(
        svc.poll(blocker).unwrap(),
        JobStatus::Completed { batched: false, .. }
    ));
    for id in [a, b, c] {
        assert!(
            matches!(
                svc.poll(id).unwrap(),
                JobStatus::Completed { batched: true, .. }
            ),
            "{id} should have batched"
        );
        assert_outputs_match_standalone(&svc, id, 4);
    }
    assert_eq!(svc.stats().batches_formed, 1);
    assert_eq!(svc.stats().batched_jobs, 3);
    assert_eq!(svc.stats().cluster_passes, 2, "blocker + one shared pass");
}

#[test]
fn concurrency_cap_queues_but_eventually_runs() {
    let mut svc = JobService::new(
        ServiceConfig::default(),
        vec![TenantConfig {
            name: "capped".into(),
            max_concurrent: 1,
            gpu_seconds: f64::INFINITY,
            mem_share: 1.0,
        }],
        Telemetry::disabled(),
    );
    let kind = JobKind::Sio {
        n: 10_000,
        seed: 5,
        chunk_kb: 16,
    };
    let first = svc.submit(JobSpec::new("capped", kind));
    let second = svc.submit(JobSpec::new("capped", kind));
    assert!(matches!(
        svc.poll(first).unwrap(),
        JobStatus::Running { .. }
    ));
    assert_eq!(
        svc.poll(second).unwrap(),
        JobStatus::Queued,
        "cap 1 means the second job waits even with a free engine"
    );
    svc.drain();
    let JobStatus::Completed { wait_s, .. } = svc.poll(second).unwrap() else {
        panic!("second job should complete once the cap frees");
    };
    assert!(wait_s > 0.0, "the capped job must have waited");
}

#[test]
fn queue_full_rejects_with_depth() {
    let cfg = ServiceConfig {
        engines: 1,
        max_queue_depth: 2,
        ..ServiceConfig::default()
    };
    let mut svc = JobService::new(
        cfg,
        vec![TenantConfig {
            name: "t".into(),
            max_concurrent: 1,
            gpu_seconds: f64::INFINITY,
            mem_share: 1.0,
        }],
        Telemetry::disabled(),
    );
    let kind = JobKind::Sio {
        n: 5_000,
        seed: 1,
        chunk_kb: 16,
    };
    let _running = svc.submit(JobSpec::new("t", kind));
    let _q1 = svc.submit(JobSpec::new("t", kind));
    let _q2 = svc.submit(JobSpec::new("t", kind));
    let over = svc.submit(JobSpec::new("t", kind));
    assert!(matches!(
        svc.poll(over).unwrap(),
        JobStatus::Rejected(RejectReason::QueueFull { depth: 2, max: 2 })
    ));
}

#[test]
fn cancel_semantics_cover_queued_running_and_terminal() {
    let mut svc = JobService::new(
        ServiceConfig {
            engines: 1,
            ..ServiceConfig::default()
        },
        vec![TenantConfig::unlimited("t")],
        Telemetry::disabled(),
    );
    let kind = JobKind::Sio {
        n: 20_000,
        seed: 9,
        chunk_kb: 8,
    };
    let running = svc.submit(JobSpec::new("t", kind));
    let queued = svc.submit(JobSpec::new("t", kind));
    // Queued cancel: removed without ever touching an engine.
    svc.cancel(queued).expect("queued cancel");
    assert!(matches!(
        svc.poll(queued).unwrap(),
        JobStatus::Cancelled {
            chunks_committed: 0,
            chunks_released: 0,
            ..
        }
    ));
    // Running cancel mid-flight: conservation holds.
    svc.advance_to(0.0004);
    svc.cancel(running).expect("running cancel");
    let JobStatus::Cancelled {
        chunks_committed,
        chunks_released,
        ..
    } = svc.poll(running).unwrap()
    else {
        panic!("running job should be cancelled");
    };
    assert_eq!(
        chunks_committed + chunks_released,
        chunk_count(svc.spec(running).unwrap())
    );
    // Terminal jobs cannot be cancelled again.
    assert!(svc.cancel(running).is_err());
    assert!(svc.cancel(JobId(999)).is_err());
    // The tenant's concurrency slot was released.
    assert_eq!(svc.tenant_running("t"), Some(0));
}

// --- quotas and fairness under arbitrary interleavings -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any interleaving of tenant submissions (and cancels), no
    /// tenant ever exceeds its concurrency quota, budget-gated dispatch
    /// never runs a job for an exhausted tenant, and every admitted job
    /// eventually reaches a terminal state — or stays queued only
    /// because its tenant's budget is spent.
    #[test]
    fn quotas_hold_under_any_interleaving(
        ops in prop::collection::vec(
            (0u8..4, 0u64..1_000, 1usize..5, 0u8..8),
            1..14,
        ),
    ) {
        let caps = [1u32, 2, 3];
        let budgets = [f64::INFINITY, 0.004, f64::INFINITY];
        let tenants: Vec<TenantConfig> = (0..3)
            .map(|i| TenantConfig {
                name: format!("t{i}"),
                max_concurrent: caps[i],
                gpu_seconds: budgets[i],
                mem_share: 1.0,
            })
            .collect();
        let mut svc = JobService::new(
            ServiceConfig { engines: 2, ..ServiceConfig::default() },
            tenants,
            Telemetry::disabled(),
        );
        let mut t = 0.0;
        let mut submitted: Vec<JobId> = Vec::new();
        let check_caps = |svc: &JobService| {
            for (i, cap) in caps.iter().enumerate() {
                let running = svc.tenant_running(&format!("t{i}")).unwrap();
                prop_assert!(
                    running <= *cap,
                    "tenant t{i} runs {running} > cap {cap}"
                );
            }
            Ok(())
        };
        for (tenant_sel, seed, size, action) in ops {
            t += 0.0002;
            svc.advance_to(t);
            check_caps(&svc)?;
            if action < 6 || submitted.is_empty() {
                let mut spec = JobSpec::new(
                    format!("t{}", tenant_sel % 3),
                    JobKind::Sio { n: size * 1500, seed, chunk_kb: 4 },
                );
                spec.priority = u32::from(action);
                spec.batchable = action % 2 == 0;
                if action == 5 {
                    spec.deadline_s = Some(0.0005);
                }
                submitted.push(svc.submit(spec));
            } else {
                let victim = submitted[(seed as usize) % submitted.len()];
                let _ = svc.cancel(victim); // terminal jobs legitimately refuse
            }
            check_caps(&svc)?;
        }
        svc.drain();
        check_caps(&svc)?;
        for id in submitted {
            let status = svc.poll(id).unwrap();
            match status {
                JobStatus::Completed { .. }
                | JobStatus::Cancelled { .. }
                | JobStatus::DeadlineMissed { .. }
                | JobStatus::Rejected(_) => {}
                JobStatus::Queued => {
                    let tenant = &svc.spec(id).unwrap().tenant;
                    let spent = svc.tenant_spent(tenant).unwrap();
                    let budget = budgets[tenant[1..].parse::<usize>().unwrap()];
                    prop_assert!(
                        spent >= budget,
                        "{id} still queued but tenant {tenant} has budget \
                         ({spent} < {budget})"
                    );
                }
                other => prop_assert!(false, "{id} in non-terminal state {other:?}"),
            }
        }
    }
}

// --- seeded chaos: kills + stalls + journals + deadlines + cancels -------

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn seeded_chaos_preserves_per_job_outputs() {
    for chaos_seed in [1u64, 7, 42] {
        let mut rng = chaos_seed;
        let tenants = vec![
            TenantConfig {
                name: "a".into(),
                max_concurrent: 2,
                gpu_seconds: f64::INFINITY,
                mem_share: 1.0,
            },
            TenantConfig {
                name: "b".into(),
                max_concurrent: 1,
                gpu_seconds: f64::INFINITY,
                mem_share: 1.0,
            },
            TenantConfig::unlimited("c"),
        ];
        let mut svc = JobService::new(
            ServiceConfig {
                engines: 2,
                ..ServiceConfig::default()
            },
            tenants,
            Telemetry::disabled(),
        );
        let names = ["a", "b", "c"];
        let mut ids = Vec::new();
        for i in 0..9 {
            svc.advance_to(i as f64 * 0.0003);
            let kind = if lcg(&mut rng).is_multiple_of(3) {
                JobKind::Wo {
                    bytes: 16_384 + (lcg(&mut rng) % 3) as usize * 8_192,
                    dict_words: 128,
                    seed: lcg(&mut rng),
                    chunk_kb: 8,
                }
            } else {
                JobKind::Sio {
                    n: 4_000 + (lcg(&mut rng) % 5) as usize * 2_000,
                    seed: lcg(&mut rng),
                    chunk_kb: 4,
                }
            };
            let mut spec = JobSpec::new(names[(lcg(&mut rng) % 3) as usize], kind);
            match lcg(&mut rng) % 5 {
                0 => spec.kill = Some(((lcg(&mut rng) % 4) as u32, 0.0002)),
                1 => spec.stall = Some(((lcg(&mut rng) % 4) as u32, 0.0001, 0.0004)),
                2 => spec.journal = true,
                3 => spec.batchable = true,
                _ => {}
            }
            if lcg(&mut rng).is_multiple_of(4) {
                spec.deadline_s = Some(0.0004 + (lcg(&mut rng) % 20) as f64 * 0.0002);
            }
            ids.push(svc.submit(spec));
            if lcg(&mut rng).is_multiple_of(3) && !ids.is_empty() {
                let victim = ids[(lcg(&mut rng) as usize) % ids.len()];
                let _ = svc.cancel(victim);
            }
        }
        svc.drain();
        let mut completed = 0;
        for &id in &ids {
            match svc.poll(id).expect("known job") {
                JobStatus::Completed { .. } => {
                    // Per-job output invariance: multi-tenancy, faults in
                    // neighbor jobs, batching, and journaling must never
                    // change what a job computes.
                    assert_outputs_match_standalone(&svc, id, 4);
                    completed += 1;
                }
                JobStatus::Cancelled {
                    chunks_committed,
                    chunks_released,
                    at_s,
                } => {
                    let spec = svc.spec(id).unwrap();
                    // Conservation only when the job ran fault-free and
                    // was stopped mid-flight.
                    if spec.kill.is_none()
                        && spec.stall.is_none()
                        && chunks_committed + chunks_released > 0
                    {
                        assert_eq!(
                            chunks_committed + chunks_released,
                            chunk_count(spec),
                            "seed {chaos_seed}: {id} cancelled at {at_s} leaks chunks"
                        );
                    }
                }
                JobStatus::DeadlineMissed {
                    chunks_committed,
                    chunks_released,
                    ..
                } => {
                    let spec = svc.spec(id).unwrap();
                    if spec.kill.is_none()
                        && spec.stall.is_none()
                        && chunks_committed + chunks_released > 0
                    {
                        assert_eq!(
                            chunks_committed + chunks_released,
                            chunk_count(spec),
                            "seed {chaos_seed}: {id} deadline-missed leaks chunks"
                        );
                    }
                }
                JobStatus::Queued | JobStatus::Running { .. } => {
                    panic!("seed {chaos_seed}: {id} never reached a terminal state")
                }
                JobStatus::Failed { .. } | JobStatus::Rejected(_) => {}
            }
        }
        assert!(
            completed >= 3,
            "seed {chaos_seed}: chaos should still complete jobs (got {completed})"
        );
        // The chaos run is itself deterministic: replaying the same seed
        // gives the same statuses.
        let mut words: Vec<String> = Vec::new();
        for &id in &ids {
            words.push(svc.poll(id).unwrap().word().to_string());
        }
        assert_eq!(words.len(), ids.len());
    }
}
