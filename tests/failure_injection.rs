//! Failure injection: the error paths a user can hit must surface as
//! typed errors with intact `std::error::Error::source` chains — callers
//! diagnose programmatically by downcasting the chain, never by grepping
//! display strings.

use std::error::Error as StdError;

use gpmr::baselines::{run_mars, MarsError};
use gpmr::core::{EngineError, MapMode, PipelineConfig};
use gpmr::prelude::*;
use gpmr::sim_gpu::{FaultPlan, Gpu, SimGpuError, SimGpuResult, SimTime};
use gpmr::sim_net::TransferFault;
use gpmr_apps::sio::sio_chunks;

#[test]
fn oversized_chunks_are_rejected_with_capacity_info() {
    // A 16 MB device cannot stage a 12 MB chunk even twice, let alone at
    // the default pipeline depth.
    let spec = GpuSpec::gt200().with_mem_capacity(16 << 20);
    let mut cluster = Cluster::new(gpmr::sim_net::Topology::new(1, 2, 2), spec);
    let data = vec![7u32; 3 << 20];
    let chunks = sio_chunks(&data, 12 << 20);
    let err = run_job(&mut cluster, &SioJob::default(), chunks).unwrap_err();
    match err {
        EngineError::ChunkTooLarge {
            bytes,
            capacity,
            slots,
        } => {
            assert_eq!(bytes, 12 << 20);
            assert_eq!(capacity, 16 << 20);
            assert_eq!(slots, 4, "default pipeline depth, no gpu-direct slot");
        }
        other => panic!("expected ChunkTooLarge, got {other}"),
    }
    // ChunkTooLarge is a leaf diagnosis: nothing beneath it in the chain.
    assert!(err.source().is_none());
}

#[test]
fn chunk_capacity_boundary_is_exact_per_staging_slot() {
    use gpmr::core::{run_job_tuned, EngineTuning};
    // Device capacity of exactly pipeline_depth × chunk bytes: every
    // staging slot fits at once, so the job must run. One extra item per
    // chunk tips it over.
    let items = 65_536usize; // 256 KiB of u32 payload
    let chunk_bytes = (items * 4) as u64;
    let tuning = |depth: u32, gpu_direct: bool| EngineTuning {
        pipeline_depth: depth,
        gpu_direct,
        ..EngineTuning::default()
    };
    let run = |n_items: usize, capacity: u64, depth: u32, direct: bool| {
        let spec = GpuSpec::gt200().with_mem_capacity(capacity);
        let mut cluster = Cluster::new(gpmr::sim_net::Topology::new(1, 2, 2), spec);
        let data = vec![7u32; n_items];
        let chunks = sio_chunks(&data, n_items * 4); // one chunk holding all items
        run_job_tuned(
            &mut cluster,
            &SioJob::default(),
            chunks,
            &tuning(depth, direct),
        )
    };

    for depth in [1u32, 2, 4] {
        let capacity = chunk_bytes * u64::from(depth);
        // Exact fit: depth slots of chunk_bytes fill the device exactly.
        assert!(
            run(items, capacity, depth, false).is_ok(),
            "exact fit must pass at depth {depth}"
        );
        // One item over: the first chunk no longer fits per slot.
        let err = run(items + 1, capacity, depth, false).unwrap_err();
        match err {
            EngineError::ChunkTooLarge { bytes, slots, .. } => {
                assert_eq!(bytes, chunk_bytes + 4, "one u32 past the exact fit");
                assert_eq!(slots, u64::from(depth));
            }
            other => panic!("expected ChunkTooLarge at depth {depth}, got {other}"),
        }
    }

    // GPU-direct parks outbound pairs in device memory for the NIC, which
    // costs one more staging slot: the depth-4 exact fit now fails...
    let capacity = chunk_bytes * 4;
    let err = run(items, capacity, 4, true).unwrap_err();
    match err {
        EngineError::ChunkTooLarge { slots, .. } => {
            assert_eq!(slots, 5, "pipeline depth 4 plus the GPU-direct slot")
        }
        other => panic!("expected ChunkTooLarge with gpu-direct, got {other}"),
    }
    // ...and one more slot of capacity restores the exact fit.
    assert!(run(items, chunk_bytes * 5, 4, true).is_ok());
}

#[test]
fn invalid_pipeline_combinations_are_rejected() {
    struct BadJob;
    impl GpmrJob for BadJob {
        type Chunk = SliceChunk<u32>;
        type Key = u32;
        type Value = u32;
        fn pipeline(&self) -> PipelineConfig {
            PipelineConfig {
                map_mode: MapMode::Accumulate,
                combine: true, // mutually exclusive with Accumulation
                ..PipelineConfig::default()
            }
        }
        fn map(
            &self,
            _gpu: &mut Gpu,
            at: SimTime,
            _chunk: &Self::Chunk,
        ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
            Ok((KvSet::new(), at))
        }
    }
    let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
    let err = run_job(
        &mut cluster,
        &BadJob,
        vec![SliceChunk::new(0, 0, vec![1u32])],
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::InvalidPipeline(_)));
}

#[test]
fn kernel_shared_memory_overflow_propagates() {
    struct GreedyKernelJob;
    impl GpmrJob for GreedyKernelJob {
        type Chunk = SliceChunk<u32>;
        type Key = u32;
        type Value = u32;
        fn map(
            &self,
            gpu: &mut Gpu,
            at: SimTime,
            _chunk: &Self::Chunk,
        ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
            let cfg = LaunchConfig::grid(4, 128).with_shared_bytes(64);
            let (_, res) = gpu.try_launch(at, &cfg, |ctx| {
                // Asks for more shared memory than the launch declared.
                let _buf: Vec<u64> = ctx.shared_alloc(100)?;
                Ok(())
            })?;
            Ok((KvSet::new(), res.end))
        }
    }
    let mut cluster = Cluster::accelerator(1, GpuSpec::gt200());
    let err = run_job(
        &mut cluster,
        &GreedyKernelJob,
        vec![SliceChunk::new(0, 0, vec![1u32; 16])],
    )
    .unwrap_err();
    match err {
        EngineError::Gpu(SimGpuError::SharedMemExceeded { declared, .. }) => {
            assert_eq!(declared, 64);
        }
        other => panic!("expected SharedMemExceeded, got {other}"),
    }
}

#[test]
fn device_oom_is_a_typed_error() {
    let gpu = Gpu::new(GpuSpec::gt200().with_mem_capacity(1024));
    let err = gpu.alloc::<u64>(1000).unwrap_err();
    assert!(matches!(err, SimGpuError::OutOfMemory { .. }));
    // Wrapped in an engine error, the device fault stays reachable (and
    // downcastable) through the source chain.
    let wrapped = EngineError::from(err);
    let source = wrapped.source().expect("Gpu errors must expose a source");
    let gpu_err = source
        .downcast_ref::<SimGpuError>()
        .expect("source must be the device-level SimGpuError");
    assert!(matches!(gpu_err, SimGpuError::OutOfMemory { .. }));
}

#[test]
fn killing_every_gpu_surfaces_a_typed_leaf_error() {
    let plan = FaultPlan::new().kill(0, 1e-6).kill(1, 1e-6);
    let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
    cluster.set_fault_plan(Some(plan));
    let data = vec![7u32; 20_000];
    let err = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 8 * 1024),
    )
    .expect_err("no GPU survives");
    assert!(matches!(err, EngineError::GpuLost { .. }));
    // Total cluster loss has no deeper cause to report.
    assert!(err.source().is_none());
}

#[test]
fn exhausted_transfer_retries_expose_the_fabric_fault_as_source() {
    // Every 1 -> 0 transfer fails forever: the engine's retry budget runs
    // out and the fabric-level fault must ride along as the source.
    let plan = FaultPlan::new().transfer_fail(Some(1), Some(0), 0.0, f64::INFINITY, u32::MAX);
    let mut cluster = Cluster::accelerator(2, GpuSpec::gt200());
    cluster.set_fault_plan(Some(plan));
    let data: Vec<u32> = (0..40_000).map(|i| i % 64).collect();
    let err = run_job(
        &mut cluster,
        &SioJob::default(),
        sio_chunks(&data, 8 * 1024),
    )
    .expect_err("the route never recovers");
    match &err {
        EngineError::TransferFailed { attempt, fault } => {
            assert!(*attempt > 0);
            assert_eq!((fault.from, fault.to), (1, 0));
        }
        other => panic!("expected TransferFailed, got {other}"),
    }
    let source = err.source().expect("TransferFailed must expose a source");
    let fault = source
        .downcast_ref::<TransferFault>()
        .expect("source must be the fabric-level TransferFault");
    assert_eq!((fault.from, fault.to), (1, 0));
}

#[test]
fn mars_in_core_violation_reports_requirements() {
    struct FatEmitter;
    impl gpmr::baselines::MarsApp for FatEmitter {
        type Item = u32;
        type Key = u32;
        type Value = [f64; 8];
        fn count(&self, _ctx: &mut gpmr::sim_gpu::BlockCtx, _items: &[u32], _idx: usize) -> usize {
            4 // four 68-byte pairs per 4-byte item
        }
        fn emit(
            &self,
            _ctx: &mut gpmr::sim_gpu::BlockCtx,
            items: &[u32],
            idx: usize,
            out: &mut Vec<(u32, [f64; 8])>,
        ) {
            for i in 0..4 {
                out.push((items[idx].wrapping_add(i), [0.0; 8]));
            }
        }
        fn reduce(
            &self,
            _ctx: &mut gpmr::sim_gpu::BlockCtx,
            _key: u32,
            vals: &[[f64; 8]],
        ) -> [f64; 8] {
            vals[0]
        }
    }
    let mut gpu = Gpu::new(GpuSpec::gt200().with_mem_capacity(1 << 20));
    let items = vec![1u32; 100_000];
    let err = run_mars(&mut gpu, &FatEmitter, &items).unwrap_err();
    match err {
        MarsError::InCoreViolation { required, capacity } => {
            assert!(required > capacity);
            assert_eq!(capacity, 1 << 20);
        }
        other => panic!("expected InCoreViolation, got {other}"),
    }
}

#[test]
fn invalid_launches_are_rejected() {
    let mut gpu = Gpu::new(GpuSpec::gt200());
    // GT200 caps blocks at 512 threads.
    let cfg = LaunchConfig::grid(1, 1024);
    let err = gpu.launch(SimTime::ZERO, &cfg, |_| ()).unwrap_err();
    assert!(matches!(err, SimGpuError::InvalidLaunch(_)));
}
