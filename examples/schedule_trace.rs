//! Visualize a GPMR schedule: run a job with tracing enabled and print
//! the ASCII Gantt chart — uploads overlapping map kernels, binning
//! overlapping computation, the sort barrier, and the reduce tail.
//!
//! Run with: `cargo run --release --example schedule_trace`

use gpmr::core::{run_job_traced, TraceKind};
use gpmr::prelude::*;
use gpmr_apps::sio::{generate_integers, sio_chunks};

fn main() {
    let gpus = 4;
    let data = generate_integers(2_000_000, 7);
    let chunks = sio_chunks(&data, 512 * 1024);
    println!(
        "Sparse Integer Occurrence: {} integers, {} chunks, {gpus} GPUs\n",
        data.len(),
        chunks.len()
    );

    let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
    let (result, trace) =
        run_job_traced(&mut cluster, &SioJob::default(), chunks).expect("job failed");

    println!("{}", trace.gantt(gpus, 110));
    println!("simulated time: {}", result.total_time());
    println!("events recorded: {}", trace.events.len());

    // Quantify the overlap the chart shows: how much upload time hides
    // under map kernels.
    for r in 0..gpus {
        let upload = trace.busy_by_kind(r, TraceKind::Upload);
        let map = trace.busy_by_kind(r, TraceKind::Map);
        let sort = trace.busy_by_kind(r, TraceKind::Sort);
        println!("rank {r}: upload busy {upload}, map busy {map}, sort busy {sort}");
    }
    println!("\n(the 'u' upload cells sit under/next to 'M' map cells: PCI-e");
    println!("streaming of the next chunk overlaps the current map kernel,");
    println!("and 's' bin sends overlap both — the paper's pipeline design)");
}
