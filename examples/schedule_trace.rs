//! Visualize a GPMR schedule: run a job with telemetry enabled, print
//! the ASCII Gantt chart — uploads overlapping map kernels, binning
//! overlapping computation, the sort barrier, and the reduce tail — and
//! export the same recording as a Perfetto trace.
//!
//! Run with: `cargo run --release --example schedule_trace`
//! Then open `target/schedule_trace.json` in https://ui.perfetto.dev

use gpmr::core::{run_job_instrumented, EngineTuning, JobTrace, TraceKind};
use gpmr::prelude::*;
use gpmr::telemetry::{export, Telemetry};
use gpmr_apps::sio::{generate_integers, sio_chunks};

fn main() {
    let gpus = 4;
    let data = generate_integers(2_000_000, 7);
    let chunks = sio_chunks(&data, 512 * 1024);
    println!(
        "Sparse Integer Occurrence: {} integers, {} chunks, {gpus} GPUs\n",
        data.len(),
        chunks.len()
    );

    // One telemetry handle records everything: spans, counters, samples.
    let tel = Telemetry::enabled();
    let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
    let result = run_job_instrumented(
        &mut cluster,
        &SioJob::default(),
        chunks,
        &EngineTuning::default(),
        &tel,
    )
    .expect("job failed");
    let snap = tel.snapshot();

    // The classic Gantt chart is derived from the same recording.
    let trace = JobTrace::from_telemetry(&snap);
    println!("{}", trace.gantt(gpus, 110));
    println!("simulated time: {}", result.total_time());
    println!(
        "recorded: {} spans, {} counter samples, {} metrics",
        snap.spans.len(),
        snap.samples.len(),
        snap.metrics.counters.len(),
    );

    // Quantify the overlap the chart shows: how much upload time hides
    // under map kernels.
    for r in 0..gpus {
        let upload = trace.busy_by_kind(r, TraceKind::Upload);
        let map = trace.busy_by_kind(r, TraceKind::Map);
        let sort = trace.busy_by_kind(r, TraceKind::Sort);
        println!("rank {r}: upload busy {upload}, map busy {map}, sort busy {sort}");
    }

    // Per-track utilization from the span recording ("Chunk" container
    // spans excluded so they don't double-count their children).
    println!(
        "\n{}",
        export::summary_report(&snap, &["Chunk"]).render_text()
    );

    // Key counters from the metrics registry.
    for key in [
        "engine.chunks_dispatched",
        "engine.pairs_emitted",
        "engine.pairs_shuffled",
        "fabric.sends",
        "fabric.bytes",
    ] {
        println!("{key} = {}", snap.metrics.counter(key));
    }

    // Export the recording for Perfetto / chrome://tracing.
    let path = "target/schedule_trace.json";
    let json = export::to_perfetto_json(&snap);
    export::validate_perfetto(&json).expect("export must validate");
    std::fs::write(path, json).expect("write trace");
    println!("\nwrote {path} — open it in https://ui.perfetto.dev");

    println!("\n(the 'u' upload cells sit under/next to 'M' map cells: PCI-e");
    println!("streaming of the next chunk overlaps the current map kernel,");
    println!("and 's' bin sends overlap both — the paper's pipeline design)");
}
