//! Sparse Integer Occurrence at cluster scale, with the pipeline knobs
//! exposed: compare the paper's plain configuration against Partial
//! Reduction and Combine on both sparse and dense key distributions —
//! reproducing the paper's finding that the right pipeline depends on the
//! data.
//!
//! Run with: `cargo run --release --example integer_histogram`

use gpmr::apps::sio::{cpu_reference, generate_integers, sio_chunks, SioJob, SioMode};
use gpmr::prelude::*;

fn run_one(label: &str, data: &[u32], mode: SioMode) {
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
    let job = SioJob::with_mode(mode);
    let chunks = sio_chunks(data, 512 * 1024);
    let result = run_job(&mut cluster, &job, chunks).expect("SIO job failed");

    // Verify counts.
    let expect = cpu_reference(data);
    let output = result.merged_output();
    assert_eq!(output.len(), expect.len());
    for (k, v) in output.iter() {
        assert_eq!(*v, expect[k]);
    }
    println!(
        "  {label:<18} {}  ({} pairs shuffled)",
        result.total_time(),
        result.timings.pairs_shuffled
    );
}

fn main() {
    const N: usize = 1_000_000;

    println!("sparse keys (~{N} distinct values — the paper's SIO):");
    let sparse = generate_integers(N, 11);
    run_one("plain (paper)", &sparse, SioMode::Plain);
    run_one("partial reduce", &sparse, SioMode::PartialReduce);
    run_one("combine", &sparse, SioMode::Combine);

    println!("\ndense keys (256 distinct values — compaction pays off):");
    let dense: Vec<u32> = sparse.iter().map(|x| x % 256).collect();
    run_one("plain", &dense, SioMode::Plain);
    run_one("partial reduce", &dense, SioMode::PartialReduce);
    run_one("combine", &dense, SioMode::Combine);

    println!("\nthe paper's conclusion in action: no single pipeline configuration");
    println!("is best for every input — sparse keys want the plain path, dense");
    println!("keys want a reduction substage.");
}
