//! Word Occurrence across a GPU cluster — the paper's WO benchmark as a
//! user would run it: generate a corpus, count words with the
//! accumulating GPMR job, verify against a sequential reference, and
//! show the partitioner crossover in action.
//!
//! Run with: `cargo run --release --example word_occurrence`

use std::sync::Arc;

use gpmr::apps::text::{chunk_text, generate_text};
use gpmr::apps::wo::{counts_from_output, cpu_reference};
use gpmr::prelude::*;

fn main() {
    // A 2k-word dictionary with its minimal perfect hash (the paper uses
    // 43k words; smaller here for a fast example).
    let dict = Arc::new(Dictionary::generate(2_000, 42));
    println!(
        "dictionary: {} words, MPH table {} bytes",
        dict.len(),
        dict.mph.table_bytes()
    );

    // 4 MB of random dictionary text, chunked at line boundaries.
    let text = generate_text(&dict, 4 << 20, 43);
    let chunks = chunk_text(&text, 256 * 1024);
    println!("corpus: {} bytes in {} chunks", text.len(), chunks.len());

    let expected = cpu_reference(&dict, &text);

    for gpus in [1u32, 4, 16] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let job = WoJob::new(dict.clone(), gpus);
        let partitioned = job.pipeline().partition != PartitionMode::None;
        let result = run_job(&mut cluster, &job, chunks.clone()).expect("WO job failed");
        let counts = counts_from_output(&dict, &result.merged_output());
        assert_eq!(counts, expected, "GPU result must match the reference");
        println!(
            "{gpus:>2} GPUs: {} (partitioner {}), {} pairs shuffled",
            result.total_time(),
            if partitioned { "on " } else { "off" },
            result.timings.pairs_shuffled,
        );
    }

    // A couple of word counts, for flavour.
    let mut top: Vec<(usize, u32)> = expected.iter().copied().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nmost frequent words:");
    for &(idx, count) in top.iter().take(5) {
        // Find the word with this MPH index.
        let word = dict
            .words
            .iter()
            .find(|w| dict.mph.index(w) as usize == idx)
            .expect("index maps to a word");
        println!("  {:<14} {count}", String::from_utf8_lossy(word));
    }
}
