//! Service-level SLO observability end to end: run a deliberately
//! overloaded multi-tenant job service with alert rules and the flight
//! recorder armed, then print the per-tenant SLO report, the alerts
//! that fired, and the Prometheus exposition — and write each
//! postmortem trace to disk for https://ui.perfetto.dev
//!
//! Run with: `cargo run --release --example slo_observability`

use gpmr::service::{
    render_prometheus, JobKind, JobService, JobSpec, ObsConfig, ServiceConfig, SloPolicy,
    TenantConfig,
};
use gpmr::telemetry::export::validate_perfetto;
use gpmr::telemetry::{AlertRule, Telemetry};

fn main() {
    // Two tenants; alice is allowed two concurrent jobs, bob is capped
    // at one so his work queues behind alice's under load.
    let tenants = vec![
        TenantConfig::unlimited("alice"),
        TenantConfig {
            max_concurrent: 1,
            ..TenantConfig::unlimited("bob")
        },
    ];

    // Observability: a 95% deadline-hit objective, two declarative
    // alert rules evaluated at every event boundary, and a 1024-event
    // flight ring that dumps a postmortem trace on every incident.
    let cfg = ServiceConfig {
        obs: ObsConfig {
            alerts: AlertRule::parse_list(
                "misses: sum(service.deadline_missed) > 0; \
                 deep: last(service.queue_depth) > 4 for 0.0005",
            )
            .expect("rules parse"),
            flight_capacity: 1024,
            slo: SloPolicy {
                deadline_target: 0.95,
            },
            ..ObsConfig::default()
        },
        ..ServiceConfig::default()
    };
    let mut svc = JobService::new(cfg, tenants, Telemetry::enabled());

    // 2x overload: 12 identical SIO jobs at 200 µs inter-arrival, with
    // one impossible deadline so the error budget takes a hit.
    for i in 0..12 {
        svc.advance_to(i as f64 * 200e-6);
        let mut spec = JobSpec::new(
            if i % 2 == 0 { "alice" } else { "bob" },
            JobKind::Sio {
                n: 40_000,
                seed: 11 + i,
                chunk_kb: 16,
            },
        );
        if i == 5 {
            spec.deadline_s = Some(0.0005); // well under the ~1.7 ms makespan
        }
        svc.submit(spec);
    }
    svc.drain();

    // The per-tenant SLO report: hit/miss/cancel/fail rates partition
    // to 1, wait percentiles are exact order statistics, and budget
    // burn compares the miss rate against the 5% error budget.
    println!("{}", svc.slo_report().render_text());

    println!("alerts fired:");
    for a in svc.alerts() {
        println!(
            "  {} at t={:.6}s value={} (> {})",
            a.rule, a.at_s, a.value, a.threshold
        );
    }

    // Every incident (the deadline miss and the alert breaches) left a
    // Perfetto-valid postmortem spliced from the flight ring.
    std::fs::create_dir_all("target/postmortems").expect("mkdir");
    for pm in svc.postmortems() {
        validate_perfetto(&pm.trace_json).expect("postmortem must validate");
        let path = format!("target/postmortems/{}", pm.file_name());
        std::fs::write(&path, &pm.trace_json).expect("write postmortem");
        println!("postmortem: {path}");
    }

    // The same accounting, scrape-ready.
    let snap = svc.telemetry().snapshot();
    println!("\n--- prometheus exposition (excerpt) ---");
    for line in render_prometheus(&snap.metrics, Some(&svc.slo_report()))
        .lines()
        .filter(|l| l.contains("slo_") || l.contains("deadline"))
    {
        println!("{line}");
    }
}
