//! Quickstart: write a GPMR job from scratch and run it on a simulated
//! 4-GPU node.
//!
//! The job counts how many times each integer occurs in a data set — the
//! "hello world" of MapReduce — using the default pipeline: plain map,
//! round-robin partitioner, CUDPP-style radix sort, thread-per-key reduce.
//!
//! Run with: `cargo run --release --example quickstart`

use gpmr::prelude::*;
use gpmr_sim_gpu::{Gpu, SimGpuResult, SimTime};

/// Count occurrences of each integer.
struct CountJob;

impl GpmrJob for CountJob {
    type Chunk = SliceChunk<u32>;
    type Key = u32;
    type Value = u32;

    // Map: one pair <x, 1> per input element. The kernel sees the whole
    // chunk (GPMR's chunking model) and charges the memory traffic it
    // would issue on a real GT200.
    fn map(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        chunk: &Self::Chunk,
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let n = chunk.items.len();
        let cfg = LaunchConfig::for_items(n, 4096, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let range = ctx.item_range(n);
            ctx.charge_read::<u32>(range.len());
            ctx.charge_write::<u32>(2 * range.len());
            let mut out = KvSet::with_capacity(range.len());
            for &x in &chunk.items[range] {
                out.push(x, 1);
            }
            out
        })?;
        let mut pairs = KvSet::new();
        for p in launch.outputs {
            pairs.append(p);
        }
        Ok((pairs, res.end))
    }

    // Reduce: one key per thread, summing the key's (contiguous) values.
    fn reduce(
        &self,
        gpu: &mut Gpu,
        at: SimTime,
        segs: &Segments<u32>,
        vals: &[u32],
    ) -> SimGpuResult<(KvSet<u32, u32>, SimTime)> {
        let cfg = LaunchConfig::for_items(segs.len().max(1), 2048, 256);
        let (launch, res) = gpu.launch(at, &cfg, |ctx| {
            let mut out = KvSet::new();
            for s in ctx.item_range(segs.len()) {
                let r = segs.range(s);
                ctx.charge_read_uncoalesced::<u32>(r.len());
                out.push(segs.keys[s], vals[r].iter().sum());
            }
            out
        })?;
        let mut out = KvSet::new();
        for p in launch.outputs {
            out.append(p);
        }
        Ok((out, res.end))
    }
}

fn main() {
    // One node of the paper's NCSA Accelerator cluster: 4 GT200 GPUs.
    let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());

    // 1M integers over a small key space, chunked for streaming.
    let data: Vec<u32> = (0..1_000_000u32).map(|i| (i * 2654435761) % 1000).collect();
    let chunks = SliceChunk::split(&data, 128 * 1024);
    println!("input: {} integers in {} chunks", data.len(), chunks.len());

    let result = run_job(&mut cluster, &CountJob, chunks).expect("job failed");

    let output = result.merged_output();
    let total: u64 = output.vals.iter().map(|&v| u64::from(v)).sum();
    println!("distinct keys: {}", output.len());
    println!(
        "total counted: {total} (matches input: {})",
        total == 1_000_000
    );
    println!("simulated job time on 4 GPUs: {}", result.total_time());
    let p = result.timings.mean_percentages();
    println!(
        "stage breakdown: map {:.1}%  bin {:.1}%  sort {:.1}%  reduce {:.1}%  sched {:.1}%",
        p[0], p[1], p[2], p[3], p[4]
    );
}
