//! Exploring hardware configurations — the paper's concluding question
//! ("the proper configuration of a GPU cluster for MapReduce ...
//! unfortunately depends on the characteristics of the task at hand").
//!
//! Runs the same shuffle-heavy SIO job on four hardware variants and uses
//! the low-level Stream API directly to show overlap on a single device.
//!
//! Run with: `cargo run --release --example custom_hardware`

use gpmr::prelude::*;
use gpmr::sim_gpu::Stream;
use gpmr_apps::sio::{generate_integers, sio_chunks, SioJob};

fn main() {
    let data = generate_integers(1_000_000, 3);
    let chunks = sio_chunks(&data, 256 * 1024);
    println!(
        "SIO, {} integers on 8 GPUs, four hardware variants:\n",
        data.len()
    );

    // 1. The paper's testbed: GT200s, gen-1 PCI-e, QDR InfiniBand.
    let mut baseline = Cluster::accelerator(8, GpuSpec::gt200());
    let t_base = run_job(&mut baseline, &SioJob::default(), chunks.clone())
        .unwrap()
        .total_time();
    println!("GT200 + PCIe gen1 (paper testbed) : {t_base}");

    // 2. Fermi-class GPUs on the same interconnect.
    let mut fermi = Cluster::accelerator(8, GpuSpec::fermi());
    let t_fermi = run_job(&mut fermi, &SioJob::default(), chunks.clone())
        .unwrap()
        .total_time();
    println!("Fermi GPUs, same fabric           : {t_fermi}");

    // 3. GPU-direct networking (the paper's future-work hardware).
    let mut direct = Cluster::accelerator(8, GpuSpec::gt200()).with_gpu_direct(true);
    let t_direct = run_job(&mut direct, &SioJob::default(), chunks.clone())
        .unwrap()
        .total_time();
    println!("GT200 + GPU-direct networking     : {t_direct}");

    // 4. The physical S1070 link pairing (two GPUs per host link).
    let mut paired = Cluster::new(Topology::new(2, 4, 2), GpuSpec::gt200());
    let t_paired = run_job(&mut paired, &SioJob::default(), chunks)
        .unwrap()
        .total_time();
    println!("GT200, paired PCI-e links         : {t_paired}");

    println!(
        "\nGPU-direct gains {:.2}x on this shuffle-heavy job; paired links cost {:.2}x.",
        t_base.as_secs() / t_direct.as_secs(),
        t_paired.as_secs() / t_base.as_secs()
    );

    // --- Stream API: overlap on one device --------------------------------
    println!("\nStream-level overlap on a single GT200:");
    let mut gpu = gpmr::sim_gpu::Gpu::new(GpuSpec::gt200());

    // Serial: upload, then compute.
    let mut serial = Stream::new();
    serial.h2d(&mut gpu, 64 << 20);
    serial
        .launch(&mut gpu, &LaunchConfig::grid(120, 256), |ctx| {
            ctx.charge_flops(1 << 24);
        })
        .unwrap();
    let t_serial = serial.completion();

    // Overlapped: copy on one stream, independent compute on another.
    gpu.reset_clock();
    let mut copy = Stream::new();
    copy.h2d(&mut gpu, 64 << 20);
    let mut compute = Stream::new();
    compute
        .launch(&mut gpu, &LaunchConfig::grid(120, 256), |ctx| {
            ctx.charge_flops(1 << 24);
        })
        .unwrap();
    let t_overlap = copy.completion().max(compute.completion());
    println!("  serial copy+kernel   : {}", t_serial);
    println!("  overlapped streams   : {}", t_overlap);
}
