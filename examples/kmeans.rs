//! Iterative K-Means Clustering on a GPU cluster.
//!
//! The paper benchmarks a single k-means iteration; this example runs the
//! full iterative algorithm — each iteration is one GPMR job whose
//! reduced sums produce the next centers — showing how GPMR jobs compose
//! (the i-MapReduce-style loop the paper's §2.2 mentions).
//!
//! Run with: `cargo run --release --example kmeans`

use gpmr::apps::kmc::{
    centers_from_sums, generate_points, initial_centers, sums_from_output, KmcJob, DIMS,
};
use gpmr::prelude::*;
use gpmr_sim_gpu::SimDuration;

fn main() {
    const K: usize = 8;
    const POINTS: usize = 200_000;
    const ITERATIONS: usize = 8;

    let points = generate_points(POINTS, K, 7);
    let chunks = SliceChunk::split(&points, 32 * 1024);
    let mut centers = initial_centers(K, 99);
    println!(
        "{POINTS} points, {K} centers, {} chunks, {ITERATIONS} iterations on 8 GPUs\n",
        chunks.len()
    );

    let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
    let mut total_time = SimDuration::ZERO;
    for iter in 0..ITERATIONS {
        let job = KmcJob::new(centers.clone());
        let result = run_job(&mut cluster, &job, chunks.clone()).expect("KMC job failed");
        let sums = sums_from_output(K, &result.merged_output());
        let updated = centers_from_sums(&centers, &sums);

        // Convergence metric: total center movement.
        let movement: f64 = centers
            .iter()
            .zip(&updated)
            .map(|(a, b)| {
                (0..DIMS)
                    .map(|d| (f64::from(a[d]) - f64::from(b[d])).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        total_time += result.total_time();
        println!(
            "iteration {iter}: {} simulated, center movement {movement:.5}",
            result.total_time()
        );
        centers = updated;
        if movement < 1e-4 {
            println!("converged early");
            break;
        }
    }
    println!("\ntotal simulated time: {total_time}");
    println!("final centers:");
    for (i, c) in centers.iter().enumerate() {
        println!(
            "  c{i}: [{:+.3}, {:+.3}, {:+.3}, {:+.3}]",
            c[0], c[1], c[2], c[3]
        );
    }
}
