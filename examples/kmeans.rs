//! Iterative K-Means Clustering on a GPU cluster.
//!
//! The paper benchmarks a single k-means iteration; this example runs the
//! full iterative algorithm on the multi-round job driver — each round is
//! one GPMR job whose reduced sums produce the next centers, the updated
//! centers are broadcast over the simulated fabric, and the points stay
//! device-resident between rounds when they fit (the i-MapReduce-style
//! loop the paper's §2.2 mentions). The reported time is one honest
//! cross-round clock: map/shuffle/reduce makespans *plus* the
//! inter-round center broadcasts, not a naive per-job sum.
//!
//! Run with: `cargo run --release --example kmeans`

use gpmr::apps::iterative::run_kmeans;
use gpmr::apps::kmc::{generate_points, initial_centers};
use gpmr::prelude::*;

fn main() {
    const K: usize = 8;
    const POINTS: usize = 200_000;
    const ITERATIONS: usize = 8;
    const CHUNK_POINTS: usize = 32 * 1024;

    let points = generate_points(POINTS, K, 7);
    println!("{POINTS} points, {K} centers, {ITERATIONS} max iterations on 8 GPUs\n");

    let mut cluster = Cluster::accelerator(8, GpuSpec::gt200());
    let result = run_kmeans(
        &mut cluster,
        &points,
        initial_centers(K, 99),
        CHUNK_POINTS,
        ITERATIONS,
        1e-4,
    )
    .expect("k-means failed");

    for (iter, movement) in result.movement.iter().enumerate() {
        println!("iteration {iter}: center movement {movement:.5}");
    }
    if result.iterations < ITERATIONS {
        println!("converged early");
    }
    println!(
        "\ntotal simulated time: {} ({} of {} iterations device-resident)",
        result.total_time, result.resident_rounds, result.iterations
    );
    println!("final centers:");
    for (i, c) in result.centers.iter().enumerate() {
        println!(
            "  c{i}: [{:+.3}, {:+.3}, {:+.3}, {:+.3}]",
            c[0], c[1], c[2], c[3]
        );
    }
}
