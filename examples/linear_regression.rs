//! Linear regression over a point cloud on a GPU cluster — the paper's LR
//! benchmark: an accumulating job that reduces a whole data set to six
//! sufficient statistics, plus the fitted model.
//!
//! Run with: `cargo run --release --example linear_regression`

use gpmr::apps::lr::{generate_samples, model_from_stats, stats_from_output, LrJob};
use gpmr::prelude::*;

fn main() {
    const SAMPLES: usize = 2_000_000;
    let (true_slope, true_intercept) = (1.75f32, -4.0f32);
    let data = generate_samples(SAMPLES, true_slope, true_intercept, 5);
    let chunks = SliceChunk::split(&data, 256 * 1024);
    println!(
        "{SAMPLES} samples of y = {true_slope}x + {true_intercept} + noise, {} chunks\n",
        chunks.len()
    );

    for gpus in [1u32, 4, 8] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let result = run_job(&mut cluster, &LrJob, chunks.clone()).expect("LR job failed");
        let stats = stats_from_output(&result.merged_output());
        let model = model_from_stats(&stats);
        println!(
            "{gpus:>2} GPUs: {}  ->  y = {:.4}x + {:.4}  (r = {:.5})",
            result.total_time(),
            model.slope,
            model.intercept,
            model.correlation
        );
        assert!((model.slope - f64::from(true_slope)).abs() < 0.01);
        assert!((model.intercept - f64::from(true_intercept)).abs() < 0.05);
    }
    println!("\nmodel recovered the generating line on every cluster size");
}
