//! Out-of-core matrix multiplication on a GPU cluster — the paper's MM
//! benchmark: tiled two-phase GPMR multiply that bypasses Sort and
//! Reduce, verified against a sequential reference, scaling across
//! cluster sizes.
//!
//! Run with: `cargo run --release --example matrix_multiply`

use gpmr::apps::mm::{mm_auto_blocks, run_mm_auto};
use gpmr::prelude::*;

fn main() {
    const N: usize = 512;
    let a = Matrix::random(N, 1);
    let b = Matrix::random(N, 2);
    println!(
        "multiplying two {N}x{N} matrices ({} tiles per dim)\n",
        N / 16
    );

    let reference = a.multiply_reference(&b);

    let mut t1 = None;
    for gpus in [1u32, 2, 4, 8] {
        let mut cluster = Cluster::accelerator(gpus, GpuSpec::gt200());
        let (rb, cb, kb) = mm_auto_blocks(N / 16, gpus, cluster.gpu(0).mem.capacity());
        let result = run_mm_auto(&mut cluster, &a, &b).expect("MM failed");

        // Verify the product element-wise.
        let max_err = result
            .c
            .data
            .iter()
            .zip(&reference.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max error {max_err}");

        let t = result.total_time;
        let t1v = *t1.get_or_insert(t);
        println!(
            "{gpus:>2} GPUs: {t} (chunks {rb}x{cb}x{kb} tiles, speedup {:.2}x, phase1 {} + phase2 {})",
            t1v.as_secs() / t.as_secs(),
            result.phase1.total,
            result.phase2.total,
        );
    }
    println!("\nproduct verified against the sequential tiled reference");
}
