//! Offline shim for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates-io access, so the workspace ships
//! an API-compatible replacement for the pieces of `rand` 0.8 the
//! workload generators call: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::gen_range`] over integer and float ranges. The generator is
//! xoshiro256**, seeded through SplitMix64 — the same construction real
//! `SmallRng` uses on 64-bit targets. Streams are deterministic for a
//! given seed but are not guaranteed to match upstream `rand` bit-for-bit;
//! everything in this repository that consumes them only requires
//! self-consistency (seeded generation, CPU references computed from the
//! same data).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform sample of a whole type (bool only; the full `Standard`
    /// distribution surface is not needed by this workspace).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples of `T`. Blanket-implemented
/// for `Range<T>`/`RangeInclusive<T>` over every [`SampleUniform`] type so
/// that type inference flows from the range into the result exactly as it
/// does with upstream `rand` (e.g. an unsuffixed float literal range picks
/// up `f32` from the surrounding expression).
pub trait SampleRange<T> {
    /// Draw one sample from `rng`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// One sample from `[low, high)`.
    fn sample_range<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// One sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    // 24 random mantissa bits in [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! int_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire multiply-shift reduction: unbiased enough for
                // workload generation, exactly reproducible.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            fn sample_inclusive<R: RngCore>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )+};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(low: f64, high: f64, rng: &mut R) -> f64 {
        low + (high - low) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore>(low: f64, high: f64, rng: &mut R) -> f64 {
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(low: f32, high: f32, rng: &mut R) -> f32 {
        low + (high - low) * unit_f32(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore>(low: f32, high: f32, rng: &mut R) -> f32 {
        low + (high - low) * unit_f32(rng.next_u64())
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for SmallRng.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        let mut d = SmallRng::seed_from_u64(9);
        let diff: Vec<u32> = (0..32).map(|_| d.gen_range(0u32..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn full_width_samples_cover_high_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_high = false;
        for _ in 0..1000 {
            if rng.gen_range(0usize..usize::MAX) > usize::MAX / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }
}
