//! Value-generation strategies: numeric ranges, `any::<T>()`, tuples, and
//! `vec(strategy, size)`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A deterministic generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Types with a whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty => $w:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen_range(<$w>::MIN..=<$w>::MAX) as $t
            }
        }
    )+};
}

arbitrary_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_range(0u8..=1) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Arbitrary bit patterns (NaNs and infinities included) — callers
        // that need finite values use range strategies instead.
        f64::from_bits(rng.gen_range(0u64..=u64::MAX))
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> f32 {
        f32::from_bits(rng.gen_range(0u32..=u32::MAX))
    }
}

/// Strategy for a whole type's domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
);

/// Size specification for [`vec()`]: an exact length or a length range.
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of an element strategy; see [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length comes from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
