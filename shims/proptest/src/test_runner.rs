//! Test-runner plumbing: configuration, case-level errors, and the
//! deterministic per-case RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Number of generated cases per property (and, upstream, much more; only
/// `cases` is honoured here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Cases to generate per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim keeps the suite fast while
        // still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (assertion failure or rejected input).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG for case `case` of the test named `name`:
/// reruns of a failing case regenerate identical inputs.
pub fn case_rng(name: &str, case: u32) -> SmallRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}
