//! Offline shim for the subset of the `proptest` crate this workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, `any::<T>()`, numeric range strategies,
//! tuple strategies, and `prop::collection::vec`.
//!
//! Inputs are generated from a deterministic per-test stream (seeded by
//! the test name and case index), so failures reproduce exactly. There is
//! no shrinking: a failing case reports the case index and the assertion
//! message.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec` and friends, mirroring upstream's module path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything the `proptest!` macro and typical tests need in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body, failing the case (not panicking the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_cases!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $parm:pat in $strategy:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(stringify!($name), case);
                $(let $parm =
                    $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
}
