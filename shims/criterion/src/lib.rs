//! Offline shim for the subset of the `criterion` crate this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, and `Bencher::iter`.
//!
//! Measurement is a plain sample-median harness: each benchmark is warmed
//! up, then timed over `sample_size` samples whose per-iteration medians
//! and means are printed. No plots, no statistics beyond median/mean/min —
//! enough to compare hot paths and catch regressions in CI logs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, self.sample_size, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (upstream flushes reports here; the shim prints as it
    /// goes).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput denominator for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample of `iters_per_sample` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    // Calibration pass: one iteration, to size the per-sample batch.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut calib);
    let per_iter = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1))
        .max(Duration::from_nanos(1));
    let budget_per_sample = MEASURE_BUDGET / sample_size as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(sample_size),
    };
    while b.samples.len() < sample_size {
        f(&mut b);
    }

    let mut per_iter_ns: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns[0];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "bench {id:<48} median {} mean {} min {}{rate}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
