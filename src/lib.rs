//! # GPMR — Multi-GPU MapReduce on (simulated) GPU clusters
//!
//! A from-scratch Rust reproduction of **Stuart & Owens, "Multi-GPU
//! MapReduce on GPU Clusters", IPDPS 2011** — the GPMR library, every
//! substrate it depends on, the five paper benchmarks, and the Phoenix
//! and Mars baselines it is evaluated against.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim_gpu`] — the deterministic GPU device simulator (GT200-class
//!   hardware model, roofline timing, capacity-enforced memory, PCI-e
//!   links);
//! * [`sim_net`] — the cluster simulator (node topology, QDR InfiniBand
//!   NICs, timed messaging);
//! * [`primitives`] — CUDPP-equivalent scan/sort/compact/histogram;
//! * [`core`] — GPMR itself: the chunked MapReduce pipeline with Partial
//!   Reduction, Accumulation, Combine, partitioning, and dynamic load
//!   balancing;
//! * [`apps`] — the paper's benchmarks: Matrix Multiplication, Sparse
//!   Integer Occurrence, Word Occurrence, K-Means, Linear Regression;
//! * [`baselines`] — Phoenix-style CPU MapReduce and Mars-style
//!   single-GPU MapReduce;
//! * [`service`] — the multi-tenant job service: submit/poll/cancel,
//!   admission control, per-tenant quotas, deadlines, small-job
//!   batching on a shared engine pool, and per-tenant SLO accounting
//!   (hit rates, exact wait/e2e percentiles, error-budget burn,
//!   Prometheus export);
//! * [`telemetry`] — metrics registry, structured spans, trace
//!   exporters (Perfetto/Chrome `trace.json`, JSONL, text summaries),
//!   windowed time series, declarative alert rules, and the
//!   crash-scoped flight recorder that dumps postmortem traces.
//!
//! ## Quick start
//!
//! ```
//! use gpmr::prelude::*;
//!
//! // A 4-GPU node of the paper's cluster.
//! let mut cluster = Cluster::accelerator(4, GpuSpec::gt200());
//!
//! // Count words with the paper's Word Occurrence job.
//! let dict = std::sync::Arc::new(Dictionary::generate(500, 7));
//! let text = gpmr::apps::text::generate_text(&dict, 100_000, 8);
//! let chunks = gpmr::apps::text::chunk_text(&text, 16 * 1024);
//! let job = WoJob::new(dict.clone(), 4);
//! let result = run_job(&mut cluster, &job, chunks).unwrap();
//!
//! let counts = gpmr::apps::wo::counts_from_output(&dict, &result.merged_output());
//! assert_eq!(counts, gpmr::apps::wo::cpu_reference(&dict, &text));
//! println!("counted in {} simulated", result.total_time());
//! ```

pub use gpmr_apps as apps;
pub use gpmr_baselines as baselines;
pub use gpmr_core as core;
pub use gpmr_primitives as primitives;
pub use gpmr_service as service;
pub use gpmr_sim_gpu as sim_gpu;
pub use gpmr_sim_net as sim_net;
pub use gpmr_telemetry as telemetry;

/// The common imports for GPMR programs.
pub mod prelude {
    pub use gpmr_apps::{Dictionary, KmcJob, LrJob, Matrix, SioJob, WoJob};
    pub use gpmr_core::{
        run_job, Chunk, GpmrJob, JobResult, KvSet, MapMode, PartitionMode, PipelineConfig,
        SliceChunk, SortMode,
    };
    pub use gpmr_primitives::Segments;
    pub use gpmr_sim_gpu::{Gpu, GpuSpec, LaunchConfig, SimDuration, SimTime};
    pub use gpmr_sim_net::{Cluster, Topology};
}
