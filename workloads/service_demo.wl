# Three-tenant demo workload for `gpmr serve` (times in simulated seconds).
#
# Exercises, in one run: mixed WO/SIO jobs, an explicit mid-flight cancel,
# a mid-job GPU kill with fault-tolerant recovery, small-job batching, a
# budget-exhausted tenant whose queued job stays queued (not run), a
# deadline miss with the typed DeadlineMissed error, and admission
# rejections (unknown tenant, memory share exceeded).

tenant alice max_concurrent=2
tenant bob   max_concurrent=1 gpu_seconds=0.005
tenant carol max_concurrent=2 mem_share=0.5

at 0.0000 submit alice sio n=60000 seed=11 chunk_kb=16            # long; cancelled below
at 0.0000 submit bob   wo  bytes=131072 dict=512 seed=22 chunk_kb=16  # exhausts bob's budget
at 0.0002 submit carol sio n=20000 seed=33 chunk_kb=16 batch      # batch pair, same window
at 0.0002 submit alice sio n=20000 seed=44 chunk_kb=16 batch
at 0.0004 submit bob   sio n=20000 seed=55 chunk_kb=16            # stays queued: budget spent
at 0.0006 submit carol wo  bytes=65536 dict=512 seed=66 chunk_kb=16 deadline=0.0020
at 0.0008 submit alice sio n=40000 seed=77 chunk_kb=16 kill=1@0.0005  # GPU 1 dies mid-job
at 0.0010 submit alice wo  bytes=32768 dict=512 seed=88 chunk_kb=16
at 0.0012 submit dave  sio n=1000 seed=99 chunk_kb=16             # unknown tenant -> rejected
at 0.0014 submit carol sio n=1000 seed=100 chunk_kb=262144        # chunk too large for mem share
at 0.0005 cancel job1                                             # mid-flight cancel
