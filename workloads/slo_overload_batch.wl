# The rho = 4.26 overload point from EXPERIMENTS.md: sixteen identical
# SIO jobs (n=40000, chunk_kb=16 — solo makespan 1.706 ms on 4 GPUs)
# at 200 us inter-arrival into the default 2-engine pool, alternating
# between two tenants. Drive `gpmr slo report --workload <this file>`
# for the per-tenant queue-wait percentiles with small-job batching
# merging the backlog into shared passes (batch_max=4).

tenant a
tenant b

at 0.0000 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0002 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0004 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0006 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0008 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0010 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0012 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0014 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0016 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0018 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0020 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0022 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0024 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0026 submit b sio n=40000 seed=11 chunk_kb=16 batch
at 0.0028 submit a sio n=40000 seed=11 chunk_kb=16 batch
at 0.0030 submit b sio n=40000 seed=11 chunk_kb=16 batch
